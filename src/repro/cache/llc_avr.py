"""The AVR Last Level Cache (paper §3.4, §3.5, Figures 6-8).

A decoupled sectored cache that co-locates uncompressed cachelines
(UCLs) and compressed memory sub-blocks (CMSs).  The model keeps the
paper's placement rules — UCLs index like a conventional cache, the
CMSs of a block occupy consecutive sets starting at the block's tag
index, and UCLs/CMSs compete equally for data-array entries under LRU —
and implements the full request (Fig. 7) and eviction (Fig. 8) flows:
DBUF hits, compressed hits, lazy writebacks, fetch+recompress, the
badly-compressed-block skip counters, and PFE-guided prefetch of
decompressed lines.

Compressed block sizes come from a static per-block size map measured
by the functional layer, so the timing simulation reflects the real
data's compressibility without re-running the compressor per event.

Data-array representation
-------------------------

Entry keys are packed int64s: a UCL is its line number (``>= 0``), a
CMS of ``(block, off)`` is ``-(block * BLOCK_CACHELINES + off) - 2``
(strictly below the :data:`EMPTY` sentinel ``-1``, so the three key
classes never collide).  State lives in fixed ``(num_sets, ways)``
tag/dirty/age planes stored as flat row-major arrays (Python lists,
for O(50 ns) scalar access in the replay loops) plus a key→slot index;
the LRU victim of a set is its occupied way with the smallest age,
exactly the convention of :mod:`repro.cache.array_lru`.

Two replay paths share that state:

* the scalar :meth:`AVRLLC.read` / :meth:`AVRLLC.writeback` flows —
  the semantic anchor, used by the ``engine="reference"`` loop and the
  unit tests;
* :meth:`AVRLLC.replay_batch` — the fast path of the vectorized
  timing engine: one numpy pass decodes the whole filtered event
  stream (line/block numbers, set indices, approx classification,
  static block sizes, DBUF bit masks), the stream is segmented into
  same-block runs (reusing the rounds machinery's group detection from
  :mod:`repro.cache.array_lru`), runs of LLC-resident touches resolve
  batched, state-changing events (misses, insertions, block evictions,
  lazy writebacks) drop to a tuned per-event flow, and every DRAM call
  is queued and settled afterwards in one
  :meth:`repro.memory.dram.DRAM.replay_transfers` pass.

Both paths produce bit-identical results; the engine-equivalence tests
pin them against each other under every ablation flag.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

import numpy as np

from ..common.config import CacheConfig
from ..common.constants import (
    BLOCK_BYTES,
    BLOCK_CACHELINES,
    CACHELINE_BYTES,
    DECOMPRESS_LATENCY_CYCLES,
    MAX_FAILED_COUNT,
    MAX_SKIP_COUNT,
    PAGE_BYTES,
)
from ..common.stats import StatCounter
from ..memory.dram import DRAM
from .array_lru import EMPTY, first_of_groups
from .cmt import CMT, CMTEntry
from .dbuf import DBUF, FULL_BLOCK_MASK, PFE_THRESHOLD


class _PFEDefault(Enum):
    """Singleton sentinel: 'use the paper's PFE threshold'.

    An enum so the sentinel pickles across sweep workers and has a
    stable canonical form in result-cache keys.
    """

    DEFAULT = "paper-default"


#: pass as ``pfe_threshold`` to keep the paper's half-block PFE policy.
#: ``None`` *disables* the PFE outright (at both the AVRLLC and DBUF
#: layers), and an int overrides the threshold — so every PFE policy is
#: reachable through the ablation harness.
PFE_DEFAULT = _PFEDefault.DEFAULT

#: bias of the packed CMS keys: key ``-2`` is ``(block 0, off 0)``.
_CMS_BIAS = 2

#: minimum same-block run length worth resolving batched; shorter runs
#: go through the per-event flow (the batch bookkeeping would cost more
#: than it saves).
_RUN_MIN = 3

# the fast scan encodes line/block/page arithmetic as shifts of the
# paper's fixed geometry (64 B lines, 16-line blocks, 4 KB pages); guard
# the assumption so a constants change fails loudly at import (a plain
# assert would vanish under ``python -O``) instead of corrupting replays
if (CACHELINE_BYTES, BLOCK_CACHELINES, BLOCK_BYTES, PAGE_BYTES) != (
    64, 16, 1024, 4096
):  # pragma: no cover - geometry is fixed by the paper
    raise RuntimeError(
        "repro.cache.llc_avr hard-codes the paper's 64 B / 16-line / "
        "4 KB geometry; update its shift constants before changing "
        "repro.common.constants"
    )


def cms_key(block_no: int, off: int) -> int:
    """Packed data-array key of the ``off``-th CMS of ``block_no``."""
    return -(block_no * BLOCK_CACHELINES + off) - _CMS_BIAS


def decode_cms_key(key: int) -> tuple[int, int]:
    """Inverse of :func:`cms_key`: ``(block_no, off)``."""
    packed = -key - _CMS_BIAS
    return packed // BLOCK_CACHELINES, packed % BLOCK_CACHELINES


class AVRLLC:
    """Shared AVR LLC + DBUF + CMT + compressor latency accounting."""

    def __init__(
        self,
        config: CacheConfig,
        dram: DRAM,
        block_size_of: Callable[[int], int],
        is_approx: Callable[[int], bool],
        enable_dbuf: bool = True,
        enable_lazy_eviction: bool = True,
        enable_skip_counters: bool = True,
        enable_cms_lru_refresh: bool = True,
        pfe_threshold: int | None | _PFEDefault = PFE_DEFAULT,
        is_approx_batch: Callable[[np.ndarray], np.ndarray] | None = None,
        block_size_of_batch: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        """The four ``enable_*`` flags ablate the paper's §3
        optimizations one by one.  ``pfe_threshold`` overrides the PFE
        policy: :data:`PFE_DEFAULT` keeps the paper's half-block
        threshold, ``None`` disables prefetching, an int replaces the
        threshold.  ``is_approx_batch`` / ``block_size_of_batch``, when
        given, must be the vectorized equivalents of ``is_approx`` /
        ``block_size_of`` (e.g. the :class:`~repro.system.layout.
        AddressLayout` batch methods); :meth:`replay_batch` then
        decodes whole event streams without per-event Python calls."""
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.latency = config.latency_cycles
        self.dram = dram
        self.block_size_of = block_size_of
        self.is_approx = is_approx
        self.is_approx_batch = is_approx_batch
        self.block_size_of_batch = block_size_of_batch
        self.enable_dbuf = enable_dbuf
        self.enable_lazy_eviction = enable_lazy_eviction
        self.enable_skip_counters = enable_skip_counters
        self.enable_cms_lru_refresh = enable_cms_lru_refresh
        # flat row-major (num_sets, ways) planes + key -> slot index
        n_slots = self.num_sets * self.ways
        self.tags: list[int] = [EMPTY] * n_slots
        self.dirty: list[bool] = [False] * n_slots
        self.ages: list[int] = [EMPTY] * n_slots
        self._slot_of: dict[int, int] = {}
        self._clock = 0
        self.dbuf = DBUF(
            PFE_THRESHOLD if pfe_threshold is PFE_DEFAULT else pfe_threshold
        )
        self.cmt = CMT()
        self.stats = StatCounter()

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _line_no(addr: int) -> int:
        return addr // CACHELINE_BYTES

    @staticmethod
    def _block_no(addr: int) -> int:
        return addr // BLOCK_BYTES

    def _ucl_set(self, line_no: int) -> int:
        return line_no % self.num_sets

    def _cms_set(self, block_no: int, off: int) -> int:
        return (block_no + off) % self.num_sets

    # ------------------------------------------------------------------
    # data-array plumbing
    # ------------------------------------------------------------------
    def _touch(self, key: int, dirty: bool = False) -> bool:
        """Refresh LRU of an existing entry; returns True if present."""
        slot = self._slot_of.get(key)
        if slot is None:
            return False
        self.ages[slot] = self._clock
        self._clock += 1
        if dirty:
            self.dirty[slot] = True
        return True

    def _insert(self, set_idx: int, key: int, dirty: bool) -> None:
        """Insert an entry, running the eviction flow on the victim."""
        slot = self._slot_of.get(key)
        if slot is not None:
            self.ages[slot] = self._clock
            self._clock += 1
            if dirty:
                self.dirty[slot] = True
            return
        self._allocate(set_idx, key, dirty)

    def _allocate(self, set_idx: int, key: int, dirty: bool) -> None:
        """Fill ``key`` into ``set_idx``, evicting the LRU way if full.

        Empty ways carry age :data:`EMPTY`, which sorts below every
        real clock value, so the min-age way is an empty one whenever
        the set is not full — fill-then-evict without a separate
        occupancy count.  Victim flows never insert (only clear or
        refresh entries), so the freed way stays free for ``key``.
        """
        ways = self.ways
        base = set_idx * ways
        ages = self.ages
        row = ages[base:base + ways]
        slot = base + row.index(min(row))
        victim = self.tags[slot]
        if victim != EMPTY:
            victim_dirty = self.dirty[slot]
            del self._slot_of[victim]
            self.tags[slot] = EMPTY
            self.dirty[slot] = False
            ages[slot] = EMPTY
            self._handle_victim(victim, victim_dirty)
        self.tags[slot] = key
        self.dirty[slot] = dirty
        ages[slot] = self._clock
        self._clock += 1
        self._slot_of[key] = slot

    def _block_cms_present(self, block_no: int) -> int:
        """Number of CMS entries of this block present (0 if none).

        CMS0 presence implies the block's compressed image is resident
        (the paper allocates/evicts a block's CMSs as a unit).
        """
        if cms_key(block_no, 0) in self._slot_of:
            size, _ = self._block_static_size(block_no)
            return size
        return 0

    def _block_static_size(self, block_no: int) -> tuple[int, int]:
        block_addr = block_no * BLOCK_BYTES
        size = self.block_size_of(block_addr)
        return size, block_addr

    def _touch_block_cms(self, block_no: int) -> None:
        """Refresh the block's CMS recency when one of its UCLs is
        accessed (paper §3.4: "the CMS LRU bits are updated when any
        UCL of the block is accessed")."""
        if not self.enable_cms_lru_refresh:
            return
        if cms_key(block_no, 0) not in self._slot_of:
            return
        size, _ = self._block_static_size(block_no)
        for off in range(size):
            self._touch(cms_key(block_no, off))

    def _dram(self, addr: int, lines: int, write: bool, approx: bool) -> int:
        """DRAM access tagged with the approx/exact traffic split."""
        self.stats.add("bytes_approx" if approx else "bytes_exact", lines * 64)
        return self.dram.access(addr, lines, write=write)

    # ------------------------------------------------------------------
    # victim (eviction) flows — paper Figure 8
    # ------------------------------------------------------------------
    def _handle_victim(self, key: int, dirty: bool) -> None:
        if key < EMPTY:  # CMS victim: evict the whole block
            block_no, _off = decode_cms_key(key)
            self._evict_compressed_block(block_no, dirty)
            return
        if not dirty:
            return
        addr = key * CACHELINE_BYTES
        if not self.is_approx(addr):
            self._dram(addr, 1, write=True, approx=False)
            self.stats.add("exact_writebacks")
            return
        self._evict_dirty_approx_ucl(addr)

    def _evict_compressed_block(self, block_no: int, first_dirty: bool) -> None:
        """Evicting any CMS evicts all CMSs of the block (paper §3.4).

        The sweep is bounded by the block's static size: CMS groups are
        allocated and evicted as a unit with exactly ``size`` members,
        so no entry can exist at an offset ``>= size`` (pinned by
        :meth:`check_invariants` and its test).
        """
        size, block_addr = self._block_static_size(block_no)
        dirty = first_dirty
        slot_of = self._slot_of
        for off in range(size):
            slot = slot_of.pop(cms_key(block_no, off), None)
            if slot is not None:
                if self.dirty[slot]:
                    dirty = True
                self.tags[slot] = EMPTY
                self.dirty[slot] = False
                self.ages[slot] = EMPTY
        if dirty:
            # Decompress, overlay dirty UCLs, recompress, write to memory.
            self.stats.add("decompressions")
            self.stats.add("compressions")
            self._dram(block_addr, size, write=True, approx=True)
            entry, cached = self.cmt.lookup_block(block_addr, size)
            if not cached:
                self.dram.transfer_partial(self.cmt.miss_traffic_bytes(), write=False)
            entry.record_success(size)
            entry.lazy_count = 0
        self.stats.add("cms_block_evictions")

    def _evict_dirty_approx_ucl(self, addr: int) -> None:
        block_no = self._block_no(addr)
        size, block_addr = self._block_static_size(block_no)

        if self._block_cms_present(block_no):
            # Recompress in place: block read from LLC, updated, stored back.
            self.stats.add("evict_recompress")
            self.stats.add("decompressions")
            self.stats.add("compressions")
            for off in range(size):
                self._touch(cms_key(block_no, off), dirty=True)
            return

        entry, cached = self.cmt.lookup_block(block_addr, size)
        if not cached:
            self.dram.transfer_partial(self.cmt.miss_traffic_bytes(), write=False)

        if entry.compressed:
            if self.enable_lazy_eviction and entry.lazy_possible():
                self.stats.add("evict_lazy_writeback")
                entry.lazy_count += 1
                self._dram(addr, 1, write=True, approx=True)
                return
            # Space exhausted: fetch block + lazy lines, merge, recompress.
            self.stats.add("evict_fetch_recompress")
            self.stats.add("decompressions")
            self.stats.add("compressions")
            self._dram(block_addr, entry.size_cachelines + entry.lazy_count, False, True)
            self._dram(block_addr, size, write=True, approx=True)
            entry.record_success(size)
            entry.lazy_count = 0
            return

        # Block is uncompressed in memory: consult the skip counters.
        skip = self.enable_skip_counters and entry.should_skip_recompression()
        if size < BLOCK_CACHELINES and not skip:
            # Attempt compression (succeeds: the data is compressible).
            self.stats.add("evict_fetch_recompress")
            self.stats.add("compressions")
            self._dram(block_addr, BLOCK_CACHELINES, False, True)
            self._dram(block_addr, size, write=True, approx=True)
            entry.record_success(size)
            return
        # Attempt fails or is skipped: plain uncompressed writeback.
        self.stats.add("evict_uncompressed_writeback")
        if size >= BLOCK_CACHELINES:
            if skip:
                entry.record_skip()
            else:
                self.stats.add("compressions")  # the failed attempt
                entry.record_failure()
        self._dram(addr, 1, write=True, approx=True)

    # ------------------------------------------------------------------
    # request flow — paper Figure 7
    # ------------------------------------------------------------------
    def read(self, addr: int, count_breakdown: bool = True) -> int:
        """Handle an LLC read request; returns its latency in cycles."""
        approx = self.is_approx(addr)
        line_no = self._line_no(addr)

        if approx and self.enable_dbuf and self.dbuf.serve(addr):
            if count_breakdown:
                self.stats.add("req_hit_dbuf")
            self.stats.add("llc_hits")
            # A block access: refresh the block's CMS recency too.
            self._touch_block_cms(self._block_no(addr))
            # The served line is also written into the LLC.
            self._insert(self._ucl_set(line_no), line_no, dirty=False)
            return self.latency

        if self._touch(line_no):
            if approx:
                if count_breakdown:
                    self.stats.add("req_hit_uncompressed")
                self._touch_block_cms(self._block_no(addr))
            self.stats.add("llc_hits")
            return self.latency

        if approx:
            block_no = self._block_no(addr)
            cms_size = self._block_cms_present(block_no)
            if cms_size:
                # Compressed hit: read the CMSs, decompress, fill DBUF.
                if count_breakdown:
                    self.stats.add("req_hit_compressed")
                self.stats.add("llc_hits")
                self.stats.add("decompressions")
                for off in range(cms_size):
                    self._touch(cms_key(block_no, off))
                self._load_dbuf(block_no, addr)
                self._insert(self._ucl_set(line_no), line_no, dirty=False)
                return self.latency + cms_size + DECOMPRESS_LATENCY_CYCLES

            # Full miss on approximate data.
            if count_breakdown:
                self.stats.add("req_miss")
            self.stats.add("llc_misses")
            return self._miss_approx(addr, block_no, line_no)

        # Exact data miss: conventional line fetch.
        self.stats.add("llc_misses")
        latency = self._dram(addr, 1, write=False, approx=False)
        self._insert(self._ucl_set(line_no), line_no, dirty=False)
        return self.latency + latency

    def _miss_approx(self, addr: int, block_no: int, line_no: int) -> int:
        size, block_addr = self._block_static_size(block_no)
        entry, cached = self.cmt.lookup_block(block_addr, size)
        if not cached:
            self.dram.transfer_partial(self.cmt.miss_traffic_bytes(), write=False)

        if not entry.compressed:
            # Uncompressed block: fetch just the requested line.
            latency = self._dram(addr, 1, write=False, approx=True)
            self._insert(self._ucl_set(line_no), line_no, dirty=False)
            return self.latency + latency

        # Fetch compressed block (+ any lazily evicted lines) from memory.
        lines = entry.size_cachelines + entry.lazy_count
        latency = self._dram(block_addr, lines, write=False, approx=True)
        self.stats.add("decompressions")
        dirty = False
        if entry.lazy_count:
            # Merged lazy lines: block recompressed on chip, marked dirty.
            self.stats.add("compressions")
            entry.lazy_count = 0
            entry.record_success(size)
            dirty = True
        for off in range(entry.size_cachelines):
            self._insert(
                self._cms_set(block_no, off), cms_key(block_no, off), dirty
            )
        self._load_dbuf(block_no, addr)
        self._insert(self._ucl_set(line_no), line_no, dirty=False)
        return self.latency + latency + DECOMPRESS_LATENCY_CYCLES

    def _load_dbuf(self, block_no: int, addr: int) -> None:
        line_off = (addr % BLOCK_BYTES) // CACHELINE_BYTES
        old_block = self.dbuf.block_addr
        prefetch = self.dbuf.load(block_no * BLOCK_BYTES, line_off)
        if prefetch and old_block is not None:
            self.stats.add("pfe_prefetches", len(prefetch))
            for off in prefetch:
                line = self._line_no(old_block + off * CACHELINE_BYTES)
                self._insert(self._ucl_set(line), line, dirty=False)

    def writeback(self, addr: int) -> int:
        """Accept a dirty line falling out of a core's L2."""
        line_no = self._line_no(addr)
        self.dbuf.note_requested(addr)
        if self.is_approx(addr):
            self._touch_block_cms(self._block_no(addr))
        self._insert(self._ucl_set(line_no), line_no, dirty=True)
        return self.latency

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Structural invariants of the packed data array; [] if clean.

        * the key→slot index and the tag plane agree both ways;
        * no CMS entry exists at an offset at or beyond its block's
          static size (what licenses the size-bounded eviction sweep);
        * a resident CMS implies its block's CMS0 is resident (groups
          allocate and evict as a unit).
        """
        problems: list[str] = []
        for key, slot in self._slot_of.items():
            if self.tags[slot] != key:
                problems.append(f"index maps {key} to slot {slot} holding "
                                f"{self.tags[slot]}")
        occupied = sum(tag != EMPTY for tag in self.tags)
        if occupied != len(self._slot_of):
            problems.append(
                f"{occupied} occupied slots vs {len(self._slot_of)} index entries"
            )
        for key in self._slot_of:
            if key < EMPTY:
                block_no, off = decode_cms_key(key)
                size, _ = self._block_static_size(block_no)
                if off >= size:
                    problems.append(
                        f"CMS (block {block_no}, off {off}) resident beyond "
                        f"static size {size}"
                    )
                if cms_key(block_no, 0) not in self._slot_of:
                    problems.append(
                        f"CMS (block {block_no}, off {off}) resident "
                        "without CMS0"
                    )
        return problems

    # ------------------------------------------------------------------
    # batched fast replay (the vectorized timing engine's AVR path)
    # ------------------------------------------------------------------
    def _decode_stream(
        self, addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One numpy pass over the event stream's stateless attributes."""
        line_no = addrs // CACHELINE_BYTES
        block_no = addrs // BLOCK_BYTES
        if self.is_approx_batch is not None:
            approx = self.is_approx_batch(addrs)
        else:
            fn = self.is_approx
            approx = np.fromiter(
                (fn(a) for a in addrs.tolist()), dtype=bool, count=addrs.size
            )
        block_addrs = block_no * BLOCK_BYTES
        if self.block_size_of_batch is not None:
            sizes = self.block_size_of_batch(block_addrs)
        else:
            fn = self.block_size_of
            sizes = np.fromiter(
                (fn(a) for a in block_addrs.tolist()),
                dtype=np.int64,
                count=addrs.size,
            )
        return line_no, block_no, approx, sizes

    def replay_batch(self, addrs: np.ndarray, is_read: np.ndarray) -> np.ndarray:
        """Replay a whole LLC event stream; returns per-event latencies.

        ``addrs``/``is_read`` describe the filtered, chunk-interleaved
        event stream: demand reads (:meth:`read`) where ``is_read``,
        dirty L2 victim writebacks (:meth:`writeback`) elsewhere.
        Equivalent to calling those methods one event at a time, with
        the per-event Python work restructured for batch speed:

        1. **Decode** — every stateless per-event attribute (line and
           block numbers, set indices, approx classification, static
           block size, DBUF bit, CMS key base) is computed in one numpy
           pass.  Blocks are remapped to dense ids, so the scan probes
           flat slot tables (one list index per lookup) instead of a
           key dict, and the eviction flows read per-block static
           size/approx off plain lists; every key the scan can ever
           touch — event lines, CMS groups, PFE prefetches, victims —
           belongs to a stream block, which is what makes the dense
           universe closed.
        2. **Run segmentation** — the stream is split into maximal
           same-block runs (:func:`~repro.cache.array_lru.
           first_of_groups`).  A run whose lines are all LLC-resident
           only moves LRU ages, dirty bits and DBUF masks — no
           insertion, eviction or DRAM traffic — so it resolves as a
           batch: per-line age refreshes, one merged CMS-group refresh,
           one OR-merged DBUF mask update, one stats update.  The first
           non-resident line drops the rest of the run to the per-event
           flow (misses, insertions, block evictions and lazy
           writebacks always take it).
        3. **Deferred DRAM** — the scan queues every DRAM call
           (including CMT metadata partials) instead of walking the
           row-buffer model per line; the whole transfer log settles in
           one :meth:`~repro.memory.dram.DRAM.replay_transfers` pass,
           and the resulting latencies scatter back into the per-event
           latency vector.

        The batch must be the *first* traffic this LLC sees (the
        timing engine runs exactly one trace per system); starting from
        a non-empty cache raises rather than silently replaying against
        the wrong state.  Scalar calls may follow a batch: all state —
        data array, DBUF, CMT, DRAM open rows — is left exactly where
        the event-by-event flow would have left it (the scan's dense
        tags are translated back to the packed-key convention on exit).
        """
        if self._slot_of or self.dbuf.block_addr is not None:
            raise ValueError(
                "replay_batch requires an empty LLC: it replays the whole "
                "event stream against fresh state (one batch per cache)"
            )
        m = int(addrs.size)
        if m == 0:
            return np.zeros(0, dtype=np.int64)

        # ---- stage 1: stateless decode ------------------------------
        line_no, block_no, approx, sizes = self._decode_stream(addrs)
        ucl_set = line_no % self.num_sets
        loff = line_no % BLOCK_CACHELINES
        bit = np.int64(1) << loff
        # an uncompressible block (static size = full block) can never
        # own CMS entries, so its events skip every CMS probe/refresh
        has_cms = approx & (sizes < BLOCK_CACHELINES)
        refreshes = (
            has_cms
            if self.enable_cms_lru_refresh
            else np.zeros(m, dtype=bool)
        )

        # dense block ids: the scan's keys are `bid * 16 + offset` for
        # both UCLs (offset = line within block) and CMS entries
        # (offset = sub-block index), held in two flat slot tables
        uniq_blocks, first_idx, bid = np.unique(
            block_no, return_index=True, return_inverse=True
        )
        k0d = bid.astype(np.int64) * BLOCK_CACHELINES
        dense_line = k0d + loff
        real_blocks = uniq_blocks.tolist()
        size_by_bid = sizes[first_idx].tolist()
        # approx must be uniform within each block for per-block
        # classification (regions are block-aligned); verify, and fall
        # back to per-address classification if a layout violates it
        uniform = bool(np.all(approx == approx[first_idx][bid]))
        approx_by_bid = approx[first_idx].tolist() if uniform else None

        # ---- stage 2: same-block run segmentation -------------------
        if uniform:
            starts = np.flatnonzero(first_of_groups(block_no))
            run_len = np.diff(np.append(starts, m))
            run_end = np.repeat(starts + run_len, run_len)
        else:
            # a mixed-approx block would make the run resolver classify
            # all of a run's reads by its first event; without
            # uniformity every event takes the per-event flow
            run_end = np.zeros(m, dtype=np.int64)

        lat = np.where(is_read, np.int64(self.latency), np.int64(0)).tolist()

        log, read_events = self._scan(
            is_read.tolist(), line_no.tolist(), dense_line.tolist(),
            ucl_set.tolist(), approx.tolist(), sizes.tolist(),
            bit.tolist(), k0d.tolist(), has_cms.tolist(),
            refreshes.tolist(), run_end.tolist(),
            real_blocks, size_by_bid, approx_by_bid, lat,
        )

        # ---- stage 3: settle the deferred DRAM transfer log ---------
        # unpack the scan's packed transfer words (see _scan: address,
        # line count, write flag, demand-read marker)
        packed = np.array(log, dtype=np.int64)
        t_lines = (packed >> 2) & 31
        dram_lat = self.dram.replay_transfers(
            packed >> 7, t_lines, (packed & 2).astype(bool)
        )
        lat_arr = np.array(lat, dtype=np.int64)
        demand = (packed & 1).astype(bool)
        lat_arr[np.array(read_events, dtype=np.int64)] += dram_lat[demand]
        return lat_arr

    def _scan(
        self,
        L_rd: list[bool],
        L_line: list[int],
        L_dline: list[int],
        L_set: list[int],
        L_apx: list[bool],
        L_size: list[int],
        L_bit: list[int],
        L_k0d: list[int],
        L_hascms: list[bool],
        L_refresh: list[bool],
        L_run_end: list[int],
        real_blocks: list[int],
        size_by_bid: list[int],
        approx_by_bid: list[bool] | None,
        lat: list[int],
    ) -> tuple[list[int], list[int]]:
        """The event scan: cache-state machine over the decoded stream.

        Everything here is per-event Python, so the flows are written
        for the interpreter: state planes are flat lists, presence
        probes are flat-table indexing on dense keys (``ucl_slot`` /
        ``cms_slot``), all loop state lives in locals, statistics
        accumulate in plain ints (folded into :attr:`stats` once at the
        end), the CMT page-cache walk is inlined (same semantics as
        :meth:`~repro.cache.cmt.CMT.lookup_block`, against the same
        dicts) and every DRAM call is appended to the transfer log the
        caller settles afterwards.  A log entry is one packed int —
        ``addr << 7 | lines << 2 | write << 1 | demand`` — so queueing
        a transfer is a single append and the caller unpacks the whole
        log vectorized (``lines == 0`` marks a CMT metadata partial
        whose byte count rides in the address field; ``demand`` marks
        the transfers whose latency scatters back to a read event).
        While the scan runs, the tag plane holds *dense* keys (UCL:
        ``dline``, CMS: ``-(k0d + off) - _CMS_BIAS``); on exit they are
        translated back to the packed real-address keys the scalar
        flows use.  The semantics mirror :meth:`read`/:meth:`writeback`
        exactly — the engine-equivalence suite diffs the two paths
        event stream by event stream.
        """
        # --- bound state -------------------------------------------------
        S = self.num_sets
        W = self.ways
        tags = self.tags
        dirty = self.dirty
        ages = self.ages
        clock = self._clock
        n_dense = len(real_blocks) * BLOCK_CACHELINES
        ucl_slot = [-1] * n_dense  # dense line -> slot
        cms_slot = [-1] * n_dense  # k0d + off  -> slot
        cmt = self.cmt
        cmt_entries = cmt._entries
        cmt_cache = cmt._cache
        cmt_capacity = cmt.CACHE_PAGES
        cmt_hits = 0
        cmt_misses = 0
        partial_word = cmt.miss_traffic_bytes() << 7
        enable_dbuf = self.enable_dbuf
        enable_lazy = self.enable_lazy_eviction
        enable_skip = self.enable_skip_counters
        pfe_thr = self.dbuf.pfe_threshold
        is_approx_fn = self.is_approx

        dbuf = self.dbuf
        dbuf_k0d = -1  # precondition: the DBUF starts empty
        dbuf_req = 0
        dbuf_in = 0
        dbuf_hits = 0
        dbuf_loads = 0

        # --- local stat counters ----------------------------------------
        st_hits = st_misses = st_dbuf = st_unc = st_cms_hit = st_miss_apx = 0
        st_decomp = st_comp = st_pfe = st_cms_evict = st_exact_wb = 0
        st_recomp = st_lazy = st_fetch_recomp = st_unc_wb = 0
        bytes_approx = bytes_exact = 0

        # --- deferred DRAM transfer log (packed words) -------------------
        log: list[int] = []
        emit = log.append
        read_events: list[int] = []  # event index per demand transfer
        note_demand = read_events.append

        # NOTE: the closures below bind their read-only state as default
        # arguments — default values are plain locals inside the call,
        # which CPython loads measurably faster than closure cells, and
        # these run half a million times per trace.

        def cmt_consult(
            block: int,
            default_size: int,
            cmt_entries: dict[int, CMTEntry] = cmt_entries,
            cmt_cache: dict[int, None] = cmt_cache,
            cmt_capacity: int = cmt_capacity,
            emit: Callable[[int], None] = emit,
            partial_word: int = partial_word,
        ) -> CMTEntry:
            # inlined CMT.lookup_block over the shared CMT dicts (the
            # scan calls this on every approximate miss and eviction)
            nonlocal cmt_hits, cmt_misses
            block_addr = block << 10
            entry = cmt_entries.get(block_addr)
            if entry is None:
                entry = CMTEntry(size_cachelines=default_size)
                cmt_entries[block_addr] = entry
            page = block_addr >> 12
            if page in cmt_cache:
                del cmt_cache[page]
                cmt_cache[page] = None
                cmt_hits += 1
                return entry
            if len(cmt_cache) >= cmt_capacity:
                del cmt_cache[next(iter(cmt_cache))]
            cmt_cache[page] = None
            cmt_misses += 1
            emit(partial_word)
            return entry

        def evict_compressed_block(
            k0: int,
            first_dirty: bool,
            tags: list[int] = tags,
            dirty: list[bool] = dirty,
            ages: list[int] = ages,
            cms_slot: list[int] = cms_slot,
            size_by_bid: list[int] = size_by_bid,
            real_blocks: list[int] = real_blocks,
            emit: Callable[[int], None] = emit,
        ) -> None:
            nonlocal st_decomp, st_comp, st_cms_evict, bytes_approx
            size = size_by_bid[k0 >> 4]
            group_dirty = first_dirty
            for idx in range(k0, k0 + size):
                slot = cms_slot[idx]
                if slot >= 0:
                    cms_slot[idx] = -1
                    if dirty[slot]:
                        group_dirty = True
                    tags[slot] = EMPTY
                    dirty[slot] = False
                    ages[slot] = EMPTY
            if group_dirty:
                st_decomp += 1
                st_comp += 1
                bytes_approx += size << 6
                block = real_blocks[k0 >> 4]
                emit(block << 17 | size << 2 | 2)
                entry = cmt_consult(block, size)
                entry.size_cachelines = size
                entry.failed = 0
                entry.skipped = 0
                entry.lazy_count = 0
            st_cms_evict += 1

        def evict_dirty_approx_ucl(
            dline: int,
            dirty: list[bool] = dirty,
            ages: list[int] = ages,
            cms_slot: list[int] = cms_slot,
            size_by_bid: list[int] = size_by_bid,
            real_blocks: list[int] = real_blocks,
            emit: Callable[[int], None] = emit,
        ) -> None:
            nonlocal st_recomp, st_decomp, st_comp, st_lazy
            nonlocal st_fetch_recomp, st_unc_wb, bytes_approx, clock
            bid = dline >> 4
            size = size_by_bid[bid]
            if size < BLOCK_CACHELINES:
                k0 = bid << 4
                slot = cms_slot[k0]
                if slot >= 0:
                    # Recompress in place: no traffic, CMSs dirtied.
                    st_recomp += 1
                    st_decomp += 1
                    st_comp += 1
                    ages[slot] = clock
                    clock += 1
                    dirty[slot] = True
                    for idx in range(k0 + 1, k0 + size):
                        slot = cms_slot[idx]
                        if slot >= 0:
                            ages[slot] = clock
                            clock += 1
                            dirty[slot] = True
                    return
                block = real_blocks[bid]
                entry = cmt_consult(block, size)
                entry_size = entry.size_cachelines
                if entry_size < BLOCK_CACHELINES:  # compressed in memory
                    if enable_lazy and entry.lazy_count < BLOCK_CACHELINES - entry_size:
                        st_lazy += 1
                        entry.lazy_count += 1
                        bytes_approx += 64
                        emit((block << 4 | (dline & 15)) << 13 | 6)
                        return
                    st_fetch_recomp += 1
                    st_decomp += 1
                    st_comp += 1
                    fetch = entry_size + entry.lazy_count
                    bytes_approx += (fetch + size) << 6
                    emit(block << 17 | fetch << 2)
                    emit(block << 17 | size << 2 | 2)
                    entry.size_cachelines = size
                    entry.failed = 0
                    entry.skipped = 0
                    entry.lazy_count = 0
                    return
                # uncompressed in memory, compressible data: attempt it
                # (unless the skip counters say not to bother)
                failed = entry.failed
                if failed > MAX_SKIP_COUNT:
                    failed = MAX_SKIP_COUNT
                if not (enable_skip and entry.skipped < failed):
                    st_fetch_recomp += 1
                    st_comp += 1
                    bytes_approx += (BLOCK_CACHELINES + size) << 6
                    emit(block << 17 | 64)
                    emit(block << 17 | size << 2 | 2)
                    entry.size_cachelines = size
                    entry.failed = 0
                    entry.skipped = 0
                    return
                st_unc_wb += 1
                bytes_approx += 64
                emit((block << 4 | (dline & 15)) << 13 | 6)
                return
            # uncompressible block: plain writeback, count the attempt
            block = real_blocks[bid]
            entry = cmt_consult(block, size)
            failed = entry.failed
            if failed > MAX_SKIP_COUNT:
                failed = MAX_SKIP_COUNT
            st_unc_wb += 1
            if enable_skip and entry.skipped < failed:
                skipped = entry.skipped + 1
                entry.skipped = (
                    skipped if skipped < MAX_SKIP_COUNT else MAX_SKIP_COUNT
                )
            else:
                st_comp += 1
                failed = entry.failed + 1
                entry.failed = (
                    failed if failed < MAX_FAILED_COUNT else MAX_FAILED_COUNT
                )
                entry.skipped = 0
            bytes_approx += 64
            emit((block << 4 | (dline & 15)) << 13 | 6)

        def dispatch_victim(
            victim: int,
            slot: int,
            dirty: list[bool] = dirty,
            ucl_slot: list[int] = ucl_slot,
            cms_slot: list[int] = cms_slot,
            real_blocks: list[int] = real_blocks,
            emit: Callable[[int], None] = emit,
        ) -> None:
            # _handle_victim for the fast path: clean UCL victims vanish
            # for free, everything else runs its Figure 8 flow.  Only
            # reached on an actual eviction, so it is off the per-event
            # fast path.
            nonlocal st_exact_wb, bytes_exact
            if victim < EMPTY:  # CMS victim: evict the whole block
                victim_dirty = dirty[slot]
                cms_slot[-victim - _CMS_BIAS] = -1
                evict_compressed_block((-victim - _CMS_BIAS) & ~15, victim_dirty)
                return
            ucl_slot[victim] = -1
            if dirty[slot]:
                victim_approx = (
                    approx_by_bid[victim >> 4]
                    if approx_by_bid is not None
                    else is_approx_fn(
                        (real_blocks[victim >> 4] << 10) + ((victim & 15) << 6)
                    )
                )
                if victim_approx:
                    evict_dirty_approx_ucl(victim)
                else:
                    bytes_exact += 64
                    real_line = real_blocks[victim >> 4] << 4 | (victim & 15)
                    emit(real_line << 13 | 6)
                    st_exact_wb += 1

        def alloc_ucl(
            set_idx: int,
            dline: int,
            key_dirty: bool,
            tags: list[int] = tags,
            dirty: list[bool] = dirty,
            ages: list[int] = ages,
            W: int = W,
            ucl_slot: list[int] = ucl_slot,
            dispatch_victim: Callable[[int, int], None] = dispatch_victim,
        ) -> None:
            # _insert's allocation path for a UCL.  The victim's slot is
            # only cleared implicitly (overwritten below): the victim
            # flows reach entries exclusively through the slot tables,
            # where the victim is already gone.
            nonlocal clock
            base = set_idx * W
            row = ages[base:base + W]
            slot = base + row.index(min(row))
            victim = tags[slot]
            if victim != EMPTY:
                dispatch_victim(victim, slot)
            tags[slot] = dline
            dirty[slot] = key_dirty
            ages[slot] = clock
            clock += 1
            ucl_slot[dline] = slot

        def alloc_cms(
            set_idx: int,
            idx: int,
            key_dirty: bool,
            tags: list[int] = tags,
            dirty: list[bool] = dirty,
            ages: list[int] = ages,
            W: int = W,
            cms_slot: list[int] = cms_slot,
            dispatch_victim: Callable[[int, int], None] = dispatch_victim,
        ) -> None:
            # as alloc_ucl, but the incoming entry is the CMS at dense
            # index `idx` (tagged negative so victim dispatch can tell)
            nonlocal clock
            base = set_idx * W
            row = ages[base:base + W]
            slot = base + row.index(min(row))
            victim = tags[slot]
            if victim != EMPTY:
                dispatch_victim(victim, slot)
            tags[slot] = -idx - _CMS_BIAS
            dirty[slot] = key_dirty
            ages[slot] = clock
            clock += 1
            cms_slot[idx] = slot

        def load_dbuf(
            k0: int,
            load_bit: int,
            ages: list[int] = ages,
            ucl_slot: list[int] = ucl_slot,
            real_blocks: list[int] = real_blocks,
            S: int = S,
            pfe_thr: int | None = pfe_thr,
            alloc_ucl: Callable[[int, int, bool], None] = alloc_ucl,
        ) -> None:
            nonlocal dbuf_k0d, dbuf_req, dbuf_in, dbuf_loads, st_pfe, clock
            if (
                pfe_thr is not None
                and dbuf_k0d >= 0
                and dbuf_req.bit_count() >= pfe_thr
            ):
                missing = ~dbuf_in & FULL_BLOCK_MASK
                if missing:
                    st_pfe += missing.bit_count()
                    old_line = real_blocks[dbuf_k0d >> 4] << 4
                    while missing:
                        low = missing & -missing
                        off = low.bit_length() - 1
                        missing ^= low
                        dline = dbuf_k0d + off
                        slot = ucl_slot[dline]
                        if slot >= 0:
                            ages[slot] = clock
                            clock += 1
                        else:
                            alloc_ucl((old_line + off) % S, dline, False)
            dbuf_k0d = k0
            dbuf_req = load_bit
            dbuf_in = load_bit
            dbuf_loads += 1

        # --- the scan ----------------------------------------------------
        i = 0
        m = len(L_rd)
        #: events before this index skip the batched-run attempt — set
        #: when a run's first line is absent, so a streak of first-touch
        #: insertions pays the failed probe once, not once per event
        skip_until = 0
        while i < m:
            # -- batched resolution of a same-block resident run --------
            if i >= skip_until and L_run_end[i] - i >= _RUN_MIN:
                end = L_run_end[i]
                apx = L_apx[i]
                # kind of every read in the run (the DBUF cannot load
                # inside a touch-only run, so this is run-constant)
                dbuf_same = dbuf_k0d == L_k0d[i]
                dbuf_here = apx and enable_dbuf and dbuf_same
                j = i
                slots = []
                add_slot = slots.append
                run_rd_bits = 0
                run_wb_bits = 0
                n_reads = 0
                while j < end:
                    slot = ucl_slot[L_dline[j]]
                    if slot < 0:
                        break  # state-changing event: per-event flow
                    add_slot(slot)
                    if L_rd[j]:
                        n_reads += 1
                        if dbuf_here:
                            run_rd_bits |= L_bit[j]
                    elif dbuf_same:
                        run_wb_bits |= L_bit[j]
                    j += 1
                if j > i:
                    # commit: all touches but the last, then the CMS
                    # group refresh anchored by the last event's flow
                    # order (read-via-DBUF and writeback refresh before
                    # their UCL touch, a plain UCL hit after)
                    last = j - 1
                    for k in range(i, last):
                        slot = slots[k - i]
                        ages[slot] = clock
                        clock += 1
                        if not L_rd[k]:
                            dirty[slot] = True
                    k0 = L_k0d[i]
                    refresh = L_refresh[i] and cms_slot[k0] >= 0
                    last_is_plain_hit = L_rd[last] and not dbuf_here
                    if refresh and not last_is_plain_hit:
                        for idx in range(k0, k0 + L_size[i]):
                            slot = cms_slot[idx]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                    slot = slots[last - i]
                    ages[slot] = clock
                    clock += 1
                    if not L_rd[last]:
                        dirty[slot] = True
                    if refresh and last_is_plain_hit:
                        for idx in range(k0, k0 + L_size[i]):
                            slot = cms_slot[idx]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                    # merged DBUF masks, stats
                    if run_rd_bits or run_wb_bits:
                        dbuf_req |= run_rd_bits | run_wb_bits
                        dbuf_in |= run_rd_bits | run_wb_bits
                    if n_reads:
                        st_hits += n_reads
                        if dbuf_here:
                            dbuf_hits += n_reads
                            st_dbuf += n_reads
                        elif apx:
                            st_unc += n_reads
                    i = j
                    if i >= m:
                        break
                    if i >= end:
                        continue
                    # fall through: event i needs the per-event flow
                else:
                    skip_until = end

            rd = L_rd[i]
            dline = L_dline[i]
            if rd:
                if L_apx[i]:
                    k0 = L_k0d[i]
                    if enable_dbuf and dbuf_k0d == k0:
                        hit_bit = L_bit[i]
                        dbuf_req |= hit_bit
                        dbuf_in |= hit_bit
                        dbuf_hits += 1
                        st_dbuf += 1
                        st_hits += 1
                        if L_refresh[i]:
                            slot = cms_slot[k0]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                                for idx in range(k0 + 1, k0 + L_size[i]):
                                    slot = cms_slot[idx]
                                    if slot >= 0:
                                        ages[slot] = clock
                                        clock += 1
                        slot = ucl_slot[dline]
                        if slot >= 0:
                            ages[slot] = clock
                            clock += 1
                        else:
                            alloc_ucl(L_set[i], dline, False)
                        i += 1
                        continue
                    slot = ucl_slot[dline]
                    if slot >= 0:
                        ages[slot] = clock
                        clock += 1
                        st_unc += 1
                        st_hits += 1
                        if L_refresh[i]:
                            slot = cms_slot[k0]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                                for idx in range(k0 + 1, k0 + L_size[i]):
                                    slot = cms_slot[idx]
                                    if slot >= 0:
                                        ages[slot] = clock
                                        clock += 1
                        i += 1
                        continue
                    size = L_size[i]
                    if L_hascms[i]:
                        slot = cms_slot[k0]
                        if slot >= 0:
                            # compressed hit: touch CMSs, decompress
                            st_cms_hit += 1
                            st_hits += 1
                            st_decomp += 1
                            ages[slot] = clock
                            clock += 1
                            for idx in range(k0 + 1, k0 + size):
                                slot = cms_slot[idx]
                                if slot >= 0:
                                    ages[slot] = clock
                                    clock += 1
                            load_dbuf(k0, L_bit[i])
                            slot = ucl_slot[dline]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                            else:
                                alloc_ucl(L_set[i], dline, False)
                            lat[i] += size + DECOMPRESS_LATENCY_CYCLES
                            i += 1
                            continue
                        # full miss on compressible approximate data
                        st_miss_apx += 1
                        st_misses += 1
                        block = real_blocks[k0 >> 4]
                        entry = cmt_consult(block, size)
                        entry_size = entry.size_cachelines
                        if entry_size >= BLOCK_CACHELINES:
                            # stored uncompressed: fetch just the line
                            bytes_approx += 64
                            emit(L_line[i] << 13 | 5)
                            note_demand(i)
                            slot = ucl_slot[dline]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                            else:
                                alloc_ucl(L_set[i], dline, False)
                            i += 1
                            continue
                        fetch = entry_size + entry.lazy_count
                        bytes_approx += fetch << 6
                        emit(block << 17 | fetch << 2 | 1)
                        note_demand(i)
                        st_decomp += 1
                        group_dirty = False
                        if entry.lazy_count:
                            st_comp += 1
                            entry.lazy_count = 0
                            entry.size_cachelines = size
                            entry.failed = 0
                            entry.skipped = 0
                            entry_size = size
                            group_dirty = True
                        for off in range(entry_size):
                            idx = k0 + off
                            slot = cms_slot[idx]
                            if slot >= 0:
                                ages[slot] = clock
                                clock += 1
                                if group_dirty:
                                    dirty[slot] = True
                            else:
                                alloc_cms((block + off) % S, idx, group_dirty)
                        load_dbuf(k0, L_bit[i])
                        slot = ucl_slot[dline]
                        if slot >= 0:
                            ages[slot] = clock
                            clock += 1
                        else:
                            alloc_ucl(L_set[i], dline, False)
                        lat[i] += DECOMPRESS_LATENCY_CYCLES
                        i += 1
                        continue
                    # miss on an uncompressible approximate block: its
                    # CMT entry can never be compressed — line fetch
                    st_miss_apx += 1
                    st_misses += 1
                    cmt_consult(real_blocks[k0 >> 4], size)
                    bytes_approx += 64
                    emit(L_line[i] << 13 | 5)
                    note_demand(i)
                    slot = ucl_slot[dline]
                    if slot >= 0:
                        ages[slot] = clock
                        clock += 1
                    else:
                        alloc_ucl(L_set[i], dline, False)
                    i += 1
                    continue
                # exact read
                slot = ucl_slot[dline]
                if slot >= 0:
                    ages[slot] = clock
                    clock += 1
                    st_hits += 1
                    i += 1
                    continue
                st_misses += 1
                bytes_exact += 64
                emit(L_line[i] << 13 | 5)
                note_demand(i)
                alloc_ucl(L_set[i], dline, False)
                i += 1
                continue
            # writeback
            if dbuf_k0d == L_k0d[i]:
                wb_bit = L_bit[i]
                dbuf_req |= wb_bit
                dbuf_in |= wb_bit
            if L_refresh[i]:
                k0 = L_k0d[i]
                slot = cms_slot[k0]
                if slot >= 0:
                    ages[slot] = clock
                    clock += 1
                    for idx in range(k0 + 1, k0 + L_size[i]):
                        slot = cms_slot[idx]
                        if slot >= 0:
                            ages[slot] = clock
                            clock += 1
            slot = ucl_slot[dline]
            if slot >= 0:
                ages[slot] = clock
                clock += 1
                dirty[slot] = True
            else:
                alloc_ucl(L_set[i], dline, True)
            i += 1

        # --- write state + stats back ------------------------------------
        # the tag plane held dense keys during the scan: translate the
        # occupied slots back to the scalar flows' packed real keys and
        # rebuild the key -> slot index
        slot_of = self._slot_of
        for slot, tag in enumerate(tags):
            if tag == EMPTY:
                continue
            if tag >= 0:
                real_key = real_blocks[tag >> 4] << 4 | (tag & 15)
            else:
                idx = -tag - _CMS_BIAS
                real_key = (
                    -(real_blocks[idx >> 4] << 4 | (idx & 15)) - _CMS_BIAS
                )
            tags[slot] = real_key
            slot_of[real_key] = slot

        self._clock = clock
        dbuf.block_addr = (
            real_blocks[dbuf_k0d >> 4] * BLOCK_BYTES if dbuf_k0d >= 0 else None
        )
        dbuf.requested_mask = dbuf_req
        dbuf.in_llc_mask = dbuf_in
        dbuf.hits += dbuf_hits
        dbuf.loads += dbuf_loads
        cmt.cache_hits += cmt_hits
        cmt.cache_misses += cmt_misses

        # fold only the counters the event flows actually hit: absent
        # keys stay absent, exactly as in the scalar path
        add = self.stats.add
        for name, count in (
            ("llc_hits", st_hits),
            ("llc_misses", st_misses),
            ("req_hit_dbuf", st_dbuf),
            ("req_hit_uncompressed", st_unc),
            ("req_hit_compressed", st_cms_hit),
            ("req_miss", st_miss_apx),
            ("decompressions", st_decomp),
            ("compressions", st_comp),
            ("pfe_prefetches", st_pfe),
            ("cms_block_evictions", st_cms_evict),
            ("exact_writebacks", st_exact_wb),
            ("evict_recompress", st_recomp),
            ("evict_lazy_writeback", st_lazy),
            ("evict_fetch_recompress", st_fetch_recomp),
            ("evict_uncompressed_writeback", st_unc_wb),
            ("bytes_approx", bytes_approx),
            ("bytes_exact", bytes_exact),
        ):
            if count:
                add(name, count)
        return log, read_events

    # ------------------------------------------------------------------
    @property
    def mpki_misses(self) -> int:
        return int(self.stats["llc_misses"])
