"""Decompressed block buffer (DBUF) and prefetch engine (PFE).

After decompressing a block, only the requested cacheline goes to the
LLC; the rest stay in the DBUF so follow-up requests to the same block
are served on chip without polluting the LLC.  When a new block
arrives, the PFE decides whether the outgoing block's remaining lines
deserve LLC insertion: the paper's threshold strategy prefetches all
lines of a block where at least half were explicitly requested.
"""

from __future__ import annotations

from ..common.constants import BLOCK_BYTES, BLOCK_CACHELINES, CACHELINE_BYTES

#: PFE threshold: prefetch when at least this many lines were requested.
PFE_THRESHOLD = BLOCK_CACHELINES // 2


class DBUF:
    """Holds the most recently decompressed memory block.

    ``pfe_threshold`` tunes the prefetch engine's requested-lines
    threshold (ablation); ``None`` disables PFE prefetching entirely.
    """

    def __init__(self, pfe_threshold: int | None = PFE_THRESHOLD) -> None:
        self.pfe_threshold = pfe_threshold
        self.block_addr: int | None = None
        self.requested: set[int] = set()
        self.in_llc: set[int] = set()
        self.hits = 0
        self.loads = 0

    @staticmethod
    def _split(addr: int) -> tuple[int, int]:
        return addr & ~(BLOCK_BYTES - 1), (addr % BLOCK_BYTES) // CACHELINE_BYTES

    def holds(self, addr: int) -> bool:
        block, _ = self._split(addr)
        return self.block_addr == block

    def serve(self, addr: int) -> bool:
        """Serve a request from the buffer if possible."""
        block, line = self._split(addr)
        if self.block_addr != block:
            return False
        self.hits += 1
        self.requested.add(line)
        self.in_llc.add(line)  # the served UCL is also written to the LLC
        return True

    def note_requested(self, addr: int) -> None:
        """Record that a line of the buffered block went to the LLC."""
        block, line = self._split(addr)
        if self.block_addr == block:
            self.requested.add(line)
            self.in_llc.add(line)

    def load(self, block_addr: int, requested_line: int) -> list[int]:
        """Replace the buffered block; returns lines the PFE prefetches.

        The returned line offsets belong to the *outgoing* block and
        should be inserted into the LLC by the caller (they are the
        not-yet-inserted lines of a block that proved useful).
        """
        prefetch: list[int] = []
        if (
            self.pfe_threshold is not None
            and self.block_addr is not None
            and len(self.requested) >= self.pfe_threshold
        ):
            prefetch = [
                i for i in range(BLOCK_CACHELINES) if i not in self.in_llc
            ]
        self.block_addr = block_addr
        self.requested = {requested_line}
        self.in_llc = {requested_line}
        self.loads += 1
        return prefetch

    def invalidate(self) -> None:
        self.block_addr = None
        self.requested.clear()
        self.in_llc.clear()
