"""Decompressed block buffer (DBUF) and prefetch engine (PFE).

After decompressing a block, only the requested cacheline goes to the
LLC; the rest stay in the DBUF so follow-up requests to the same block
are served on chip without polluting the LLC.  When a new block
arrives, the PFE decides whether the outgoing block's remaining lines
deserve LLC insertion: the paper's threshold strategy prefetches all
lines of a block where at least half were explicitly requested.

The per-block line tracking is stored as ``BLOCK_CACHELINES``-wide bit
masks (one bit per line offset), not Python sets: the AVR fast-replay
engine folds a whole run of same-block requests into the buffer with a
single bitwise OR, the PFE threshold check is a popcount, and
single-event updates are a shift and an OR.  ``requested`` /
``in_llc`` remain available as set-valued views for tests and
diagnostics.
"""

from __future__ import annotations

from ..common.constants import BLOCK_BYTES, BLOCK_CACHELINES, CACHELINE_BYTES

#: PFE threshold: prefetch when at least this many lines were requested.
PFE_THRESHOLD = BLOCK_CACHELINES // 2

#: all line offsets of a block, as a bit mask
FULL_BLOCK_MASK = (1 << BLOCK_CACHELINES) - 1


class DBUF:
    """Holds the most recently decompressed memory block.

    ``pfe_threshold`` tunes the prefetch engine's requested-lines
    threshold (ablation); ``None`` disables PFE prefetching entirely.
    """

    def __init__(self, pfe_threshold: int | None = PFE_THRESHOLD) -> None:
        self.pfe_threshold = pfe_threshold
        self.block_addr: int | None = None
        #: bit ``i`` set <=> line offset ``i`` was explicitly requested
        self.requested_mask: int = 0
        #: bit ``i`` set <=> line offset ``i`` was written into the LLC
        self.in_llc_mask: int = 0
        self.hits = 0
        self.loads = 0

    @staticmethod
    def _split(addr: int) -> tuple[int, int]:
        return addr & ~(BLOCK_BYTES - 1), (addr % BLOCK_BYTES) // CACHELINE_BYTES

    @property
    def requested(self) -> set[int]:
        """Requested line offsets as a set (view over the bit mask)."""
        return {i for i in range(BLOCK_CACHELINES) if self.requested_mask >> i & 1}

    @property
    def in_llc(self) -> set[int]:
        """LLC-inserted line offsets as a set (view over the bit mask)."""
        return {i for i in range(BLOCK_CACHELINES) if self.in_llc_mask >> i & 1}

    def holds(self, addr: int) -> bool:
        block, _ = self._split(addr)
        return self.block_addr == block

    def serve(self, addr: int) -> bool:
        """Serve a request from the buffer if possible."""
        block, line = self._split(addr)
        if self.block_addr != block:
            return False
        self.hits += 1
        bit = 1 << line
        self.requested_mask |= bit
        self.in_llc_mask |= bit  # the served UCL is also written to the LLC
        return True

    def note_requested(self, addr: int) -> None:
        """Record that a line of the buffered block went to the LLC."""
        block, line = self._split(addr)
        if self.block_addr == block:
            bit = 1 << line
            self.requested_mask |= bit
            self.in_llc_mask |= bit

    def pfe_fires(self) -> bool:
        """Whether replacing the buffer now would trigger a prefetch."""
        return (
            self.pfe_threshold is not None
            and self.block_addr is not None
            and self.requested_mask.bit_count() >= self.pfe_threshold
        )

    def load(self, block_addr: int, requested_line: int) -> list[int]:
        """Replace the buffered block; returns lines the PFE prefetches.

        The returned line offsets belong to the *outgoing* block and
        should be inserted into the LLC by the caller (they are the
        not-yet-inserted lines of a block that proved useful).
        """
        prefetch: list[int] = []
        if self.pfe_fires():
            missing = ~self.in_llc_mask & FULL_BLOCK_MASK
            while missing:
                low = missing & -missing
                prefetch.append(low.bit_length() - 1)
                missing ^= low
        bit = 1 << requested_line
        self.block_addr = block_addr
        self.requested_mask = bit
        self.in_llc_mask = bit
        self.loads += 1
        return prefetch

    def invalidate(self) -> None:
        self.block_addr = None
        self.requested_mask = 0
        self.in_llc_mask = 0
