"""Cache hierarchy: private stacks, baseline LLC, AVR decoupled LLC."""

from .base import SetAssocCache
from .cmt import CMT, CMTEntry
from .dbuf import DBUF, PFE_THRESHOLD
from .hierarchy import PrivateCaches
from .llc_avr import AVRLLC, PFE_DEFAULT
from .llc_baseline import BaselineLLC

__all__ = [
    "AVRLLC",
    "BaselineLLC",
    "CMT",
    "CMTEntry",
    "DBUF",
    "PFE_DEFAULT",
    "PFE_THRESHOLD",
    "PrivateCaches",
    "SetAssocCache",
]
