"""Generic set-associative cache with true-LRU replacement.

Used for the private L1/L2 levels, the baseline LLC, and (with a
capacity multiplier) the Truncate and Doppelgänger LLC models.  Sets
are Python dicts whose insertion order encodes recency — touching a
line pops and reinserts it, evicting takes the first key — giving O(1)
operations without per-line timestamp bookkeeping.
"""

from __future__ import annotations

from ..common.config import CacheConfig


class SetAssocCache:
    """One cache level at cacheline granularity."""

    def __init__(
        self,
        config: CacheConfig,
        capacity_multiplier: float = 1.0,
    ) -> None:
        self.line_bytes = config.line_bytes
        self.line_shift = config.line_bytes.bit_length() - 1
        self.num_sets = config.num_sets
        self.ways = max(1, round(config.ways * capacity_multiplier))
        self.latency = config.latency_cycles
        # tag -> dirty flag; dict order is LRU order (front = oldest)
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, addr: int) -> tuple[int, int]:
        line = addr >> self.line_shift
        return line % self.num_sets, line

    def access(
        self, addr: int, write: bool
    ) -> tuple[bool, tuple[int, bool] | None]:
        """Look up (and on miss, allocate) the line holding ``addr``.

        Returns ``(hit, victim)`` where ``victim`` is
        ``(victim_addr, victim_dirty)`` if a line was evicted to make
        room, else None.
        """
        index, line = self._index(addr)
        cset = self._sets[index]
        if line in cset:
            dirty = cset.pop(line)
            cset[line] = dirty or write
            self.hits += 1
            return True, None
        self.misses += 1
        victim = None
        if len(cset) >= self.ways:
            vline = next(iter(cset))
            vdirty = cset.pop(vline)
            victim = (vline << self.line_shift, vdirty)
        cset[line] = write
        return False, victim

    def probe(self, addr: int) -> bool:
        """Check presence without changing state."""
        index, line = self._index(addr)
        return line in self._sets[index]

    def invalidate(self, addr: int) -> bool | None:
        """Drop the line if present; returns its dirty flag (None if absent)."""
        index, line = self._index(addr)
        return self._sets[index].pop(line, None)

    def insert(self, addr: int, dirty: bool) -> tuple[int, bool] | None:
        """Insert a line (e.g. a writeback from an inner level).

        Returns the victim ``(addr, dirty)`` if one was evicted.
        """
        index, line = self._index(addr)
        cset = self._sets[index]
        if line in cset:
            prev = cset.pop(line)
            cset[line] = prev or dirty
            return None
        victim = None
        if len(cset) >= self.ways:
            vline = next(iter(cset))
            vdirty = cset.pop(vline)
            victim = (vline << self.line_shift, vdirty)
        cset[line] = dirty
        return victim

    def lru_state(self) -> list[list[tuple[int, bool]]]:
        """Per-set ``[(line, dirty)]`` in LRU→MRU order.

        The contract the batched matrix model
        (:class:`repro.cache.array_lru.BatchedLRUMatrix`) must
        reproduce; used by the differential tests.
        """
        return [list(cset.items()) for cset in self._sets]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
