"""Compression Metadata Table (paper §3.2, Figure 3).

One 23-bit entry per 1 KB memory block: compressed size, number of
lazily-evicted lines, compression method, exponent bias, and the
failed/skipped compression-attempt counters that implement the paper's
"keep track of badly compressed blocks" optimization.

The CMT lives in main memory and is cached on-chip in a TLB-like
structure updated in pair with the TLB; a CMT-cache miss costs a few
bytes of metadata bandwidth (the paper: "adds a few bytes of bandwidth
overhead at every TLB miss").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.constants import (
    BLOCK_BYTES,
    BLOCK_CACHELINES,
    BLOCKS_PER_PAGE,
    CMT_ENTRY_BITS,
    MAX_FAILED_COUNT,
    MAX_SKIP_COUNT,
    PAGE_BYTES,
)


@dataclass(slots=True)
class CMTEntry:
    """Metadata for one memory block.

    Declared with ``slots=True``: the timing replay touches entry
    fields on every approximate miss and eviction, and slotted
    attribute access keeps that hot path off the instance-dict route.
    """

    size_cachelines: int = BLOCK_CACHELINES  # 16 = stored uncompressed
    lazy_count: int = 0
    method: int = 0
    bias: int = 0
    failed: int = 0
    skipped: int = 0

    @property
    def compressed(self) -> bool:
        return self.size_cachelines < BLOCK_CACHELINES

    @property
    def lazy_capacity(self) -> int:
        """Free cachelines in the block's 1 KB slot for lazy evictions."""
        if not self.compressed:
            return 0
        return BLOCK_CACHELINES - self.size_cachelines

    def lazy_possible(self) -> bool:
        return self.compressed and self.lazy_count < self.lazy_capacity

    def should_skip_recompression(self) -> bool:
        """The badly-compressed-block policy: after ``failed`` consecutive
        failures, skip up to ``min(failed, MAX_SKIP)`` recompression
        attempts before trying again."""
        return self.skipped < min(self.failed, MAX_SKIP_COUNT)

    def record_skip(self) -> None:
        self.skipped = min(self.skipped + 1, MAX_SKIP_COUNT)

    def record_failure(self) -> None:
        self.failed = min(self.failed + 1, MAX_FAILED_COUNT)
        self.skipped = 0

    def record_success(self, size_cachelines: int) -> None:
        self.size_cachelines = size_cachelines
        self.failed = 0
        self.skipped = 0


class CMT:
    """The metadata table plus its on-chip cache."""

    #: pages of CMT entries cached on chip (tracks the TLB)
    CACHE_PAGES = 1024

    def __init__(self) -> None:
        self._entries: dict[int, CMTEntry] = {}
        self._cache: dict[int, None] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @staticmethod
    def block_addr(addr: int) -> int:
        return addr & ~(BLOCK_BYTES - 1)

    def lookup(self, addr: int, default_size: int | None = None) -> tuple[CMTEntry, bool]:
        """Entry for the block containing ``addr``; returns (entry, cached).

        ``default_size`` seeds the entry's compressed size on first
        touch (the timing layer's static per-block size).
        """
        return self.lookup_block(self.block_addr(addr), default_size)

    def lookup_block(
        self, block_addr: int, default_size: int | None = None
    ) -> tuple[CMTEntry, bool]:
        """:meth:`lookup` for a caller that already has the block base.

        The fast-replay engine decodes block numbers once per trace and
        calls this directly, skipping the per-event address masking.
        """
        entry = self._entries.get(block_addr)
        if entry is None:
            entry = CMTEntry()
            if default_size is not None:
                entry.size_cachelines = default_size
            self._entries[block_addr] = entry

        page = block_addr // PAGE_BYTES
        cache = self._cache
        if page in cache:
            del cache[page]
            cache[page] = None
            self.cache_hits += 1
            cached = True
        else:
            if len(cache) >= self.CACHE_PAGES:
                del cache[next(iter(cache))]
            cache[page] = None
            self.cache_misses += 1
            cached = False
        return entry, cached

    @staticmethod
    def miss_traffic_bytes() -> int:
        """Metadata bytes fetched on a CMT-cache miss (one page's worth)."""
        return (CMT_ENTRY_BITS * BLOCKS_PER_PAGE + 7) // 8
