"""Baseline shared LLC (also models Truncate's and Doppelgänger's LLCs).

A conventional set-associative cache in front of DRAM.  The comparison
designs reuse it with modifiers:

* **Truncate** stores approximate lines at half width, effectively
  doubling capacity for approximate data, and moves 32 bytes per
  approximate line on the memory link.
* **Doppelgänger** shares data entries between similar lines; its
  effective capacity gain is the measured dedup factor, capped by its
  4x tag-array reach.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..common.config import CacheConfig
from ..common.stats import StatCounter
from ..memory.dram import DRAM
from .array_lru import BatchedLRUMatrix
from .base import SetAssocCache


class BaselineLLC:
    """Shared last-level cache over DRAM."""

    def __init__(
        self,
        config: CacheConfig,
        dram: DRAM,
        is_approx: Callable[[int], bool] | None = None,
        capacity_multiplier: float = 1.0,
        approx_line_bytes: int = 64,
        is_approx_batch: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        """``is_approx_batch``, when given, must be the vectorized
        equivalent of ``is_approx`` (e.g.
        :meth:`~repro.system.layout.AddressLayout.is_approx_batch`);
        :meth:`replay_batch` then classifies whole transfer streams
        without one Python call per address."""
        self.cache = SetAssocCache(config, capacity_multiplier)
        self.latency = config.latency_cycles
        self.dram = dram
        #: no approx classifier ⇒ the batched path can skip per-address
        #: classification entirely (every transfer is exact traffic)
        self._always_exact = is_approx is None
        self.is_approx = is_approx or (lambda addr: False)
        self.is_approx_batch = is_approx_batch
        self.approx_line_bytes = approx_line_bytes
        self.stats = StatCounter()

    def _dram_lines_bytes(self, addr: int) -> int:
        """Bytes a line transfer costs on the memory link."""
        if self.approx_line_bytes != 64 and self.is_approx(addr):
            return self.approx_line_bytes
        return 64

    def _transfer(self, addr: int, write: bool) -> int:
        nbytes = self._dram_lines_bytes(addr)
        self.stats.add(
            "bytes_approx" if self.is_approx(addr) else "bytes_exact", nbytes
        )
        if nbytes == 64:
            return self.dram.access(addr, 1, write=write)
        latency = self.dram.access(addr, 1, write=write)
        # Credit back the saved half-line of traffic and occupancy.
        self.dram.stats.add("bytes_written" if write else "bytes_read", nbytes - 64)
        channel = (addr // 64) % self.dram.config.channels
        self.dram.channel_busy[channel] -= self.dram.config.burst_cycles // 2
        return latency

    def _handle_victim(self, victim: tuple[int, bool] | None) -> None:
        if victim is not None and victim[1]:
            self._transfer(victim[0], write=True)
            self.stats.add("writebacks")

    def read(self, addr: int) -> int:
        hit, victim = self.cache.access(addr, write=False)
        if hit:
            self.stats.add("llc_hits")
            return self.latency
        self.stats.add("llc_misses")
        self._handle_victim(victim)
        return self.latency + self._transfer(addr, write=False)

    def writeback(self, addr: int) -> int:
        victim = self.cache.insert(addr, dirty=True)
        self._handle_victim(victim)
        return self.latency

    # ------------------------------------------------------------------
    # batched replay (the vectorized timing engine's fast path)
    # ------------------------------------------------------------------
    def replay_batch(self, addrs: np.ndarray, is_read: np.ndarray) -> np.ndarray:
        """Replay a whole LLC event stream; returns per-event latencies.

        ``addrs``/``is_read`` describe the filtered, chunk-interleaved
        event stream: demand reads (:meth:`read`) where ``is_read``,
        dirty L2 victim writebacks (:meth:`writeback`) elsewhere.
        Equivalent to calling those methods one event at a time — the
        data array is replayed through a
        :class:`~repro.cache.array_lru.BatchedLRUMatrix`, the resulting
        miss/victim transfer stream through
        :meth:`~repro.memory.dram.DRAM.access_batch` — but with all
        per-event Python work vectorized.  Latencies are reported for
        read events (writeback slots hold 0; the caller discards them,
        as the reference loop discards :meth:`writeback`'s return).

        The batch must be the *first* traffic this LLC sees (the
        timing engine runs exactly one trace per system); starting from
        a non-empty cache raises rather than silently replaying against
        the wrong state.  The final contents are written back to the
        sequential cache, so per-event calls may follow a batch.
        """
        cache = self.cache
        if any(cache._sets):
            raise ValueError(
                "replay_batch requires an empty LLC: it replays the whole "
                "event stream against fresh state (one batch per cache)"
            )
        n = int(addrs.size)
        matrix = BatchedLRUMatrix(cache.num_sets, cache.ways)
        lines = addrs >> cache.line_shift
        present, victim_line, victim_dirty = matrix.replay(
            lines % cache.num_sets, lines, ~is_read, is_access=is_read
        )
        hits = int(present[is_read].sum())
        misses = int(is_read.sum()) - hits
        cache.hits += hits
        cache.misses += misses
        if hits:
            self.stats.add("llc_hits", hits)
        if misses:
            self.stats.add("llc_misses", misses)
        dirty_victims = int(victim_dirty.sum())
        if dirty_victims:
            self.stats.add("writebacks", dirty_victims)

        # Memory-link transfer stream, in event order: each event first
        # writes back its dirty victim, then (read misses) fetches the
        # demand line — the `_handle_victim` → `_transfer` sequence.
        demand = is_read & ~present
        t_addr = np.empty((n, 2), dtype=np.int64)
        t_addr[:, 0] = victim_line << cache.line_shift
        t_addr[:, 1] = addrs
        t_write = np.zeros((n, 2), dtype=bool)
        t_write[:, 0] = True
        t_valid = np.empty((n, 2), dtype=bool)
        t_valid[:, 0] = victim_dirty
        t_valid[:, 1] = demand
        mask = t_valid.ravel()
        dram_addr = t_addr.ravel()[mask]
        dram_write = t_write.ravel()[mask]
        event_of = np.repeat(np.arange(n, dtype=np.int64), 2)[mask]
        m = int(dram_addr.size)

        # Approx/exact traffic split, plus Truncate's half-width lines.
        if self._always_exact:
            approx = np.zeros(m, dtype=bool)
        elif self.is_approx_batch is not None:
            approx = self.is_approx_batch(dram_addr)
        else:
            fn = self.is_approx
            approx = np.fromiter(
                (fn(a) for a in dram_addr.tolist()), dtype=bool, count=m
            )
        half = approx & (self.approx_line_bytes != 64)
        nbytes = np.where(half, self.approx_line_bytes, 64)
        n_approx = int(approx.sum())
        if n_approx:
            self.stats.add("bytes_approx", int(nbytes[approx].sum()))
        if m - n_approx:
            self.stats.add("bytes_exact", int(nbytes[~approx].sum()))

        dram_latency = self.dram.access_batch(dram_addr, dram_write)

        if half.any():
            # Credit back the saved half-line of traffic and occupancy.
            delta = self.approx_line_bytes - 64
            half_writes = int((half & dram_write).sum())
            half_reads = int((half & ~dram_write).sum())
            if half_writes:
                self.dram.stats.add("bytes_written", half_writes * delta)
            if half_reads:
                self.dram.stats.add("bytes_read", half_reads * delta)
            channels = (dram_addr[half] // 64) % self.dram.config.channels
            credit = np.bincount(
                channels, minlength=self.dram.config.channels
            ) * (self.dram.config.burst_cycles // 2)
            for c in range(self.dram.config.channels):
                self.dram.channel_busy[c] -= int(credit[c])

        # Mirror the final contents into the dict cache (LRU order is
        # dict order), so sequential read()/writeback() calls after a
        # batch observe the correct state.
        for cset, entries in zip(cache._sets, matrix.lru_state()):
            for entry_line, entry_dirty in entries:
                cset[entry_line] = entry_dirty

        latencies = np.zeros(n, dtype=np.int64)
        latencies[is_read] = self.latency
        demand_events = event_of[~dram_write]
        latencies[demand_events] += dram_latency[~dram_write]
        return latencies

    @property
    def mpki_misses(self) -> int:
        return int(self.stats["llc_misses"])
