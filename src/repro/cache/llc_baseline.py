"""Baseline shared LLC (also models Truncate's and Doppelgänger's LLCs).

A conventional set-associative cache in front of DRAM.  The comparison
designs reuse it with modifiers:

* **Truncate** stores approximate lines at half width, effectively
  doubling capacity for approximate data, and moves 32 bytes per
  approximate line on the memory link.
* **Doppelgänger** shares data entries between similar lines; its
  effective capacity gain is the measured dedup factor, capped by its
  4x tag-array reach.
"""

from __future__ import annotations

from typing import Callable

from ..common.config import CacheConfig
from ..common.stats import StatCounter
from ..memory.dram import DRAM
from .base import SetAssocCache


class BaselineLLC:
    """Shared last-level cache over DRAM."""

    def __init__(
        self,
        config: CacheConfig,
        dram: DRAM,
        is_approx: Callable[[int], bool] | None = None,
        capacity_multiplier: float = 1.0,
        approx_line_bytes: int = 64,
    ) -> None:
        self.cache = SetAssocCache(config, capacity_multiplier)
        self.latency = config.latency_cycles
        self.dram = dram
        self.is_approx = is_approx or (lambda addr: False)
        self.approx_line_bytes = approx_line_bytes
        self.stats = StatCounter()

    def _dram_lines_bytes(self, addr: int) -> int:
        """Bytes a line transfer costs on the memory link."""
        if self.approx_line_bytes != 64 and self.is_approx(addr):
            return self.approx_line_bytes
        return 64

    def _transfer(self, addr: int, write: bool) -> int:
        nbytes = self._dram_lines_bytes(addr)
        self.stats.add(
            "bytes_approx" if self.is_approx(addr) else "bytes_exact", nbytes
        )
        if nbytes == 64:
            return self.dram.access(addr, 1, write=write)
        latency = self.dram.access(addr, 1, write=write)
        # Credit back the saved half-line of traffic and occupancy.
        self.dram.stats.add("bytes_written" if write else "bytes_read", nbytes - 64)
        channel = (addr // 64) % self.dram.config.channels
        self.dram.channel_busy[channel] -= self.dram.config.burst_cycles // 2
        return latency

    def _handle_victim(self, victim: tuple[int, bool] | None) -> None:
        if victim is not None and victim[1]:
            self._transfer(victim[0], write=True)
            self.stats.add("writebacks")

    def read(self, addr: int) -> int:
        hit, victim = self.cache.access(addr, write=False)
        if hit:
            self.stats.add("llc_hits")
            return self.latency
        self.stats.add("llc_misses")
        self._handle_victim(victim)
        return self.latency + self._transfer(addr, write=False)

    def writeback(self, addr: int) -> int:
        victim = self.cache.insert(addr, dirty=True)
        self._handle_victim(victim)
        return self.latency

    @property
    def mpki_misses(self) -> int:
        return int(self.stats["llc_misses"])
