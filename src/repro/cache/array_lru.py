"""Batched set-associative LRU over ``(sets, ways)`` tag/dirty/age matrices.

This module is the vectorized half of the timing simulator's fast path.
:class:`BatchedLRUMatrix` replays a whole *batch* of cache operations —
the complete per-core access stream of a trace — through a
set-associative LRU cache whose state lives in three dense matrices:

* ``tags``  — ``(sets, ways)`` int64, the line number held by each way
  (:data:`EMPTY` where the way is unallocated),
* ``dirty`` — ``(sets, ways)`` bool,
* ``ages``  — ``(sets, ways)`` int64, the batch position of the last
  touch; the LRU victim is the occupied way with the smallest age.

Ops targeting *different* sets are independent, so the batch is split
into **rounds**: round ``r`` contains the ``r``-th op of every set, and
each round is executed as one fancy-indexed matrix update (gather the
round's set rows, match tags, pick hit/empty/LRU ways, scatter the new
tags/dirty/ages back).  For the streaming access patterns this
reproduction simulates, sets are touched round-robin, so rounds are
wide and the Python-level loop shrinks by roughly the number of sets —
the key to the vectorized engine's speedup.

Per-op semantics are bit-compatible with
:class:`repro.cache.base.SetAssocCache`: an *access* op mirrors
``SetAssocCache.access`` (hit refreshes recency and ORs the dirty flag,
miss allocates and counts), an *insert* op mirrors
``SetAssocCache.insert`` (victim fill from an inner level; refreshes
recency when present, never counts hits/misses).  The equivalence is
pinned by differential tests in ``tests/test_array_lru.py``.

:class:`BatchedPrivateFilter` stacks two matrices into the private
L1+L2 hierarchy of *all* cores at once (core ``c``'s set ``s`` maps to
matrix row ``c * num_sets + s``), reproducing
:meth:`repro.cache.hierarchy.PrivateCaches.access` — including the
corrected clean-victim install — for an entire trace in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.config import SystemConfig

#: sentinel tag for an unallocated way; its age (-1) sorts below every
#: real op position, so empty ways are always allocated before any
#: occupied way is evicted — exactly the dict model's fill-then-evict.
EMPTY = -1


def first_of_groups(values: np.ndarray) -> np.ndarray:
    """Bool mask marking the first element of each run of equal values.

    The core of the rounds machinery: applied to a sorted set-index
    array it delimits the per-set op groups that become replay rounds;
    applied to a consecutive block-number stream it delimits the
    same-block runs the AVR fast replay resolves batched
    (:meth:`repro.cache.llc_avr.AVRLLC.replay_batch`).
    """
    n = int(values.size)
    first = np.empty(n, dtype=bool)
    if n == 0:
        return first
    first[0] = True
    np.not_equal(values[1:], values[:-1], out=first[1:])
    return first


class BatchedLRUMatrix:
    """One cache level as ``(sets, ways)`` matrices with batch replay."""

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError(f"need num_sets, ways >= 1, got {num_sets}, {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.tags = np.full((num_sets, ways), EMPTY, dtype=np.int64)
        self.dirty = np.zeros((num_sets, ways), dtype=bool)
        self.ages = np.full((num_sets, ways), EMPTY, dtype=np.int64)
        #: monotonically increasing op clock, carried across batches
        self._clock = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def replay(
        self,
        set_idx: np.ndarray,
        lines: np.ndarray,
        flags: np.ndarray,
        is_access: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Replay a batch of ops in order; returns per-op outcomes.

        ``set_idx``/``lines`` give each op's set and full line number;
        ``flags`` is the write flag for access ops and the incoming
        dirty flag for insert ops (the state update is identical:
        OR into dirty on presence, initial dirty on allocation).
        ``is_access`` marks which ops are accesses (default: all); only
        accesses count toward ``hits``/``misses``.

        Returns ``(present, victim_line, victim_dirty)``: whether each
        op found its line resident, and the evicted line per op
        (:data:`EMPTY` where nothing was evicted).
        """
        n = int(lines.size)
        present = np.zeros(n, dtype=bool)
        victim_line = np.full(n, EMPTY, dtype=np.int64)
        victim_dirty = np.zeros(n, dtype=bool)
        if n == 0:
            return present, victim_line, victim_dirty

        # Rounds: op k of the batch lands in round `rank(k)` = number of
        # earlier ops on the same set.  Sets within a round are distinct,
        # so each round is one conflict-free fancy-indexed update.
        order = np.argsort(set_idx, kind="stable")
        first = first_of_groups(set_idx[order])
        group = np.cumsum(first) - 1
        rank = np.arange(n, dtype=np.int64) - np.flatnonzero(first)[group]
        by_round = np.argsort(rank, kind="stable")
        op_ids = order[by_round]
        rounds = int(rank[by_round[-1]]) + 1
        bounds = np.searchsorted(
            rank[by_round], np.arange(rounds + 1, dtype=np.int64)
        )

        tags, ages = self.tags, self.ages
        # flat views: gather/scatter through one computed index instead
        # of (row, way) tuple indexing — the round loop's hot path
        tags_flat = tags.reshape(-1)
        dirty_flat = self.dirty.reshape(-1)
        ages_flat = ages.reshape(-1)
        ways = self.ways
        base = self._clock
        for r in range(rounds):
            ids = op_ids[bounds[r]:bounds[r + 1]]
            s = set_idx[ids]
            ln = lines[ids]
            t = tags[s]                       # (k, ways) gathers
            match = t == ln[:, None]
            found = match.any(axis=1)
            # Hit way where found; else the empty (age EMPTY) or LRU way.
            way = np.where(found, match.argmax(axis=1), ages[s].argmin(axis=1))
            flat = s * ways + way
            old_tag = tags_flat[flat]
            old_dirty = dirty_flat[flat]
            evicted = ~found & (old_tag != EMPTY)
            present[ids] = found
            victim_line[ids] = np.where(evicted, old_tag, EMPTY)
            victim_dirty[ids] = old_dirty & evicted
            fl = flags[ids]
            tags_flat[flat] = ln
            dirty_flat[flat] = np.where(found, old_dirty | fl, fl)
            ages_flat[flat] = base + ids

        self._clock = base + n
        if is_access is None:
            found_accesses = int(present.sum())
            total_accesses = n
        else:
            found_accesses = int(present[is_access].sum())
            total_accesses = int(is_access.sum())
        self.hits += found_accesses
        self.misses += total_accesses - found_accesses
        return present, victim_line, victim_dirty

    # ------------------------------------------------------------------
    def lru_state(self) -> list[list[tuple[int, bool]]]:
        """Per-set ``[(line, dirty)]`` in LRU→MRU order (tests only)."""
        out: list[list[tuple[int, bool]]] = []
        for s in range(self.num_sets):
            occupied = np.flatnonzero(self.tags[s] != EMPTY)
            by_age = occupied[np.argsort(self.ages[s][occupied], kind="stable")]
            out.append(
                [(int(self.tags[s][w]), bool(self.dirty[s][w])) for w in by_age]
            )
        return out


@dataclass
class FilteredTrace:
    """Per-access outcome of the batched private L1+L2 filter.

    Arrays are parallel to the concatenated access stream (all cores,
    core-major order).  ``wb_insert_*`` is the dirty L2 victim displaced
    by the L1-victim install, ``wb_access_*`` the one displaced by the
    demand fill — in :class:`~repro.cache.hierarchy.PrivateCaches`
    terms, the two possible entries of ``l2_writebacks``, in order.
    """

    l1_hit: np.ndarray          # (n,) bool
    needs_llc: np.ndarray       # (n,) bool — missed both private levels
    wb_insert_addr: np.ndarray  # (n,) int64
    wb_insert_valid: np.ndarray  # (n,) bool
    wb_access_addr: np.ndarray  # (n,) int64
    wb_access_valid: np.ndarray  # (n,) bool
    l1_accesses: int
    l2_accesses: int


class BatchedPrivateFilter:
    """All cores' private L1+L2 stacks, replayed as two matrix caches.

    Equivalent to one :class:`~repro.cache.hierarchy.PrivateCaches` per
    core: per-core state is disjoint, so core ``c``'s sets occupy rows
    ``[c * num_sets, (c + 1) * num_sets)`` of a single matrix and every
    core is filtered in the same batched pass.
    """

    def __init__(self, config: SystemConfig, num_cores: int) -> None:
        self.config = config
        self.num_cores = num_cores
        self._l1_sets = config.l1.num_sets
        self._l2_sets = config.l2.num_sets
        self._l1_shift = config.l1.line_bytes.bit_length() - 1
        self._l2_shift = config.l2.line_bytes.bit_length() - 1
        self.l1 = BatchedLRUMatrix(self._l1_sets * num_cores, config.l1.ways)
        self.l2 = BatchedLRUMatrix(self._l2_sets * num_cores, config.l2.ways)

    def filter(
        self, core_ids: np.ndarray, addrs: np.ndarray, writes: np.ndarray
    ) -> FilteredTrace:
        """Filter the concatenated access stream of all cores.

        ``core_ids``/``addrs``/``writes`` are parallel arrays in
        core-major order (each core's accesses contiguous and in trace
        order — the order :meth:`GeneratedTrace.concatenated` emits).
        Only per-core relative order matters: private-cache state never
        crosses cores, so the batched rounds interleave freely.
        """
        n = int(addrs.size)
        # --- L1: every access ------------------------------------------
        line1 = addrs >> self._l1_shift
        set1 = line1 % self._l1_sets + core_ids * self._l1_sets
        hit1, v1_line, v1_dirty = self.l1.replay(set1, line1, writes)

        # --- L2 op stream: for each L1 miss, install the L1 victim
        # (clean or dirty), then the demand access ----------------------
        miss_ids = np.flatnonzero(~hit1)
        k = int(miss_ids.size)
        op_addr = np.empty(2 * k, dtype=np.int64)
        op_addr[0::2] = v1_line[miss_ids] << self._l1_shift
        op_addr[1::2] = addrs[miss_ids]
        op_flag = np.zeros(2 * k, dtype=bool)
        op_flag[0::2] = v1_dirty[miss_ids]
        op_is_access = np.zeros(2 * k, dtype=bool)
        op_is_access[1::2] = True
        op_access_id = np.repeat(miss_ids, 2)
        op_core = np.repeat(core_ids[miss_ids], 2)
        valid = np.ones(2 * k, dtype=bool)
        valid[0::2] = v1_line[miss_ids] != EMPTY   # not every miss evicts
        op_addr, op_flag, op_is_access = (
            op_addr[valid], op_flag[valid], op_is_access[valid]
        )
        op_access_id, op_core = op_access_id[valid], op_core[valid]

        line2 = op_addr >> self._l2_shift
        set2 = line2 % self._l2_sets + op_core * self._l2_sets
        hit2, v2_line, v2_dirty = self.l2.replay(
            set2, line2, op_flag, is_access=op_is_access
        )

        # --- scatter L2 outcomes back to their accesses ----------------
        needs_llc = np.zeros(n, dtype=bool)
        acc = op_is_access
        needs_llc[op_access_id[acc]] = ~hit2[acc]

        v2_addr = v2_line << self._l2_shift
        wb_valid = (v2_line != EMPTY) & v2_dirty
        wb_insert_addr = np.zeros(n, dtype=np.int64)
        wb_insert_valid = np.zeros(n, dtype=bool)
        wb_access_addr = np.zeros(n, dtype=np.int64)
        wb_access_valid = np.zeros(n, dtype=bool)
        ins = ~acc
        wb_insert_addr[op_access_id[ins]] = v2_addr[ins]
        wb_insert_valid[op_access_id[ins]] = wb_valid[ins]
        wb_access_addr[op_access_id[acc]] = v2_addr[acc]
        wb_access_valid[op_access_id[acc]] = wb_valid[acc]

        return FilteredTrace(
            l1_hit=hit1,
            needs_llc=needs_llc,
            wb_insert_addr=wb_insert_addr,
            wb_insert_valid=wb_insert_valid,
            wb_access_addr=wb_access_addr,
            wb_access_valid=wb_access_valid,
            l1_accesses=n,
            l2_accesses=k,
        )
