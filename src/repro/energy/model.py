"""System energy model (McPAT/CACTI stand-in, 32 nm-era coefficients).

Energy is dynamic (per-event) plus static (per-second) for each of the
five components the paper's Figure 10 breaks down: core, L1+L2, LLC,
DRAM and the AVR compressor/decompressor.  Absolute joules are
order-of-magnitude plausible for a 32 nm CMP; the figures report values
normalized to the baseline, so relative accuracy — which follows the
simulated event counts and execution time — is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event dynamic energies (nJ) and static powers (W)."""

    core_nj_per_instruction: float = 0.35
    l1_nj_per_access: float = 0.012
    l2_nj_per_access: float = 0.045
    llc_nj_per_access: float = 0.18
    dram_nj_per_line: float = 8.0
    compressor_nj_per_op: float = 0.45

    core_static_w_per_core: float = 0.55
    l12_static_w_per_core: float = 0.08
    llc_static_w: float = 0.45
    dram_static_w: float = 0.90
    compressor_static_w: float = 0.04


#: Figure 10 component labels, in plot order.
COMPONENTS = ("Core", "L1+L2", "LLC", "DRAM", "Compressor/Decompressor")


@dataclass
class EnergyBreakdown:
    """Joules per component."""

    joules: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.joules.values())

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        ref = baseline.total
        return {k: v / ref for k, v in self.joules.items()} if ref else dict(self.joules)


class EnergyModel:
    """Turns simulator event counts into a Figure 10-style breakdown."""

    def __init__(self, coefficients: EnergyCoefficients | None = None) -> None:
        self.c = coefficients or EnergyCoefficients()

    def compute(
        self,
        counts: Mapping[str, float],
        seconds: float,
        num_cores: int,
        has_compressor: bool = False,
    ) -> EnergyBreakdown:
        """``counts`` keys: instructions, l1_accesses, l2_accesses,
        llc_accesses, dram_lines, compressor_ops."""
        c = self.c
        nj = 1e-9
        joules = {
            "Core": counts.get("instructions", 0) * c.core_nj_per_instruction * nj
            + num_cores * c.core_static_w_per_core * seconds,
            "L1+L2": (
                counts.get("l1_accesses", 0) * c.l1_nj_per_access
                + counts.get("l2_accesses", 0) * c.l2_nj_per_access
            )
            * nj
            + num_cores * c.l12_static_w_per_core * seconds,
            "LLC": counts.get("llc_accesses", 0) * c.llc_nj_per_access * nj
            + c.llc_static_w * seconds,
            "DRAM": counts.get("dram_lines", 0) * c.dram_nj_per_line * nj
            + c.dram_static_w * seconds,
            "Compressor/Decompressor": (
                counts.get("compressor_ops", 0) * c.compressor_nj_per_op * nj
                + (c.compressor_static_w * seconds if has_compressor else 0.0)
            ),
        }
        return EnergyBreakdown(joules)
