"""Energy modelling (McPAT/CACTI stand-in)."""

from .model import COMPONENTS, EnergyBreakdown, EnergyCoefficients, EnergyModel

__all__ = ["COMPONENTS", "EnergyBreakdown", "EnergyCoefficients", "EnergyModel"]
