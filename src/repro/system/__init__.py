"""Full-system timing simulation of the five design points."""

from .factory import build_system
from .layout import AddressLayout
from .simulator import SimResult, TimingSystem

__all__ = ["AddressLayout", "SimResult", "TimingSystem", "build_system"]
