"""Address-space view shared by the timing simulators.

Maps physical addresses to (a) whether they belong to an
architecturally-approximable region and (b) the static compressed size
of their 1 KB block, as measured by the functional layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.constants import BLOCK_BYTES, BLOCK_CACHELINES


@dataclass
class _Range:
    start: int
    end: int
    sizes: np.ndarray | int  # per-block sizes, or one constant size


@dataclass
class AddressLayout:
    """Approximable ranges + per-block compressed sizes."""

    ranges: list[_Range] = field(default_factory=list)

    def add_region(
        self, start: int, nbytes: int, sizes: np.ndarray | int
    ) -> None:
        end = start + (-(-nbytes // BLOCK_BYTES)) * BLOCK_BYTES
        if isinstance(sizes, np.ndarray):
            expected = (end - start) // BLOCK_BYTES
            if sizes.size < expected:
                # Pad with the median size (regions measured at a
                # different granularity than their padded extent).
                fill = int(np.median(sizes)) if sizes.size else BLOCK_CACHELINES
                sizes = np.concatenate(
                    [sizes, np.full(expected - sizes.size, fill, dtype=sizes.dtype)]
                )
        self.ranges.append(_Range(start, end, sizes))

    def shifted(self, offset: int) -> "AddressLayout":
        """A copy of this layout relocated by ``offset`` bytes.

        Per-block size arrays are shared, not copied — a relocation
        changes where a region sits in the composed address space, not
        what its blocks compress to.  The scenario composer uses this
        to place each workload instance's regions at a disjoint base
        offset (:mod:`repro.scenario.compose`).
        """
        out = AddressLayout()
        out.ranges = [
            _Range(r.start + offset, r.end + offset, r.sizes)
            for r in self.ranges
        ]
        return out

    def is_approx(self, addr: int) -> bool:
        for r in self.ranges:
            if r.start <= addr < r.end:
                return True
        return False

    def is_approx_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_approx` over an address array.

        Lets the batched timing engine classify a whole transfer stream
        without one Python call per address.
        """
        out = np.zeros(addrs.shape, dtype=bool)
        for r in self.ranges:
            out |= (addrs >= r.start) & (addrs < r.end)
        return out

    def block_size_of(self, block_addr: int) -> int:
        """Compressed size (cachelines) of the block at ``block_addr``."""
        for r in self.ranges:
            if r.start <= block_addr < r.end:
                if isinstance(r.sizes, np.ndarray):
                    return int(r.sizes[(block_addr - r.start) // BLOCK_BYTES])
                return int(r.sizes)
        return BLOCK_CACHELINES

    def block_size_of_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_size_of` over an address array.

        Addresses outside every range report ``BLOCK_CACHELINES``
        (stored uncompressed), like the scalar lookup.  The AVR
        fast-replay engine uses this to decode the static size of every
        event's block in one pass instead of one Python call per event.
        """
        out = np.full(addrs.shape, BLOCK_CACHELINES, dtype=np.int64)
        # first matching range wins, like the scalar walk (nothing
        # forbids overlapping regions)
        unassigned = np.ones(addrs.shape, dtype=bool)
        for r in self.ranges:
            in_r = unassigned & (addrs >= r.start) & (addrs < r.end)
            if isinstance(r.sizes, np.ndarray):
                out[in_r] = r.sizes[(addrs[in_r] - r.start) // BLOCK_BYTES]
            else:
                out[in_r] = int(r.sizes)
            unassigned &= ~in_r
        return out

    @property
    def approx_bytes(self) -> int:
        return sum(r.end - r.start for r in self.ranges)

    def mean_compression_ratio(self) -> float:
        """Average ratio over the approximable ranges."""
        blocks = stored = 0
        for r in self.ranges:
            n = (r.end - r.start) // BLOCK_BYTES
            blocks += n
            if isinstance(r.sizes, np.ndarray):
                stored += int(r.sizes.sum())
            else:
                stored += n * int(r.sizes)
        return blocks * BLOCK_CACHELINES / stored if stored else 1.0
