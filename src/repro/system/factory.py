"""Construction of evaluated design points, via the design registry.

Historically this module hardwired the five paper designs behind a
closed if/elif chain over the ``Design`` enum.  Dispatch now lives in
the spec itself (:meth:`repro.designs.DesignSpec.build_llc`): a new
design point is one ``register_design`` call and this file never
changes again.
"""

from __future__ import annotations

from ..common.config import SystemConfig
from ..designs import DesignSpec, LLCBuildContext, get_design
from ..memory.dram import DRAM
from .layout import AddressLayout
from .simulator import TimingSystem


def build_system(
    design: "DesignSpec | str",
    config: SystemConfig,
    layout: AddressLayout,
    footprint_bytes: int,
    dedup_factor: float = 1.0,
    avr_options: dict | None = None,
) -> TimingSystem:
    """Wire up DRAM + the design's LLC into a runnable timing system.

    ``design`` is anything :func:`repro.designs.get_design` resolves: a
    :class:`~repro.designs.DesignSpec`, a registry name, or a legacy
    :class:`~repro.common.types.Design` enum member.  ``layout``
    carries the approximable ranges and measured block sizes;
    ``footprint_bytes`` the total workload footprint (to estimate the
    fraction of LLC-resident data that is approximate for the capacity
    models); ``dedup_factor`` the functional layer's measured
    Doppelgänger dedup; ``avr_options`` forwards ablation flags to
    :class:`~repro.cache.llc_avr.AVRLLC` — passing them to a design
    that cannot consume them raises ``ValueError``.
    """
    spec = get_design(design)
    spec.validate_options(avr_options)
    dram = DRAM(config.dram, line_bytes=config.llc.line_bytes)
    ctx = LLCBuildContext(
        config=config,
        dram=dram,
        layout=layout,
        footprint_bytes=footprint_bytes,
        dedup_factor=dedup_factor,
        options=dict(spec.avr_options) | dict(avr_options or {}),
    )
    return TimingSystem(spec, config, spec.build_llc(ctx), dram)
