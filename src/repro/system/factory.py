"""Construction of the five evaluated design points."""

from __future__ import annotations

import numpy as np

from ..cache.llc_avr import AVRLLC
from ..cache.llc_baseline import BaselineLLC
from ..common.config import SystemConfig
from ..common.constants import BLOCK_CACHELINES
from ..common.types import Design
from ..memory.dram import DRAM
from .layout import AddressLayout
from .simulator import TimingSystem


def build_system(
    design: Design,
    config: SystemConfig,
    layout: AddressLayout,
    footprint_bytes: int,
    dedup_factor: float = 1.0,
    avr_options: dict | None = None,
) -> TimingSystem:
    """Wire up DRAM + the design's LLC into a runnable timing system.

    ``layout`` carries the approximable ranges and measured block sizes;
    ``footprint_bytes`` the total workload footprint (to estimate the
    fraction of LLC-resident data that is approximate for the capacity
    models); ``dedup_factor`` the functional layer's measured
    Doppelgänger dedup; ``avr_options`` forwards ablation flags to
    :class:`~repro.cache.llc_avr.AVRLLC` (AVR/ZeroAVR only).
    """
    dram = DRAM(config.dram, line_bytes=config.llc.line_bytes)
    approx_frac = (
        min(1.0, layout.approx_bytes / footprint_bytes) if footprint_bytes else 0.0
    )

    if design == Design.BASELINE:
        llc = BaselineLLC(config.llc, dram)
    elif design == Design.TRUNCATE:
        # Approximate lines stored/transferred at half width: capacity
        # stretches by the approximate share, the link moves 32 B lines.
        capacity = 1.0 / (1.0 - approx_frac / 2.0)
        llc = BaselineLLC(
            config.llc,
            dram,
            is_approx=layout.is_approx,
            capacity_multiplier=capacity,
            approx_line_bytes=32,
            is_approx_batch=layout.is_approx_batch,
        )
    elif design == Design.DGANGER:
        # Dedup shares data entries between similar lines; reach is
        # bounded by the 4x tag array.
        effective = min(max(dedup_factor, 1.0), float(config.dganger_tag_factor))
        capacity = 1.0 / (1.0 - approx_frac * (1.0 - 1.0 / effective))
        llc = BaselineLLC(
            config.llc,
            dram,
            is_approx=layout.is_approx,
            capacity_multiplier=capacity,
            is_approx_batch=layout.is_approx_batch,
        )
    elif design == Design.ZERO_AVR:
        # AVR machinery present, nothing marked approximable.
        llc = AVRLLC(
            config.llc,
            dram,
            block_size_of=lambda addr: BLOCK_CACHELINES,
            is_approx=lambda addr: False,
            is_approx_batch=lambda addrs: np.zeros(addrs.shape, dtype=bool),
            block_size_of_batch=lambda addrs: np.full(
                addrs.shape, BLOCK_CACHELINES, dtype=np.int64
            ),
            **(avr_options or {}),
        )
    elif design == Design.AVR:
        llc = AVRLLC(
            config.llc,
            dram,
            block_size_of=layout.block_size_of,
            is_approx=layout.is_approx,
            is_approx_batch=layout.is_approx_batch,
            block_size_of_batch=layout.block_size_of_batch,
            **(avr_options or {}),
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown design {design}")

    return TimingSystem(design, config, llc, dram)
