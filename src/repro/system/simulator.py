"""Trace-driven multicore timing simulator.

Replays per-core traces through private L1/L2 stacks, a shared LLC
(baseline, Truncate, Doppelgänger or AVR flavour) and the DDR4 model,
with interval-model cycle accounting per core.  Cores are interleaved
in fixed-size chunks so they share the LLC and DRAM realistically.

Execution time is the slower of the latency-bound estimate (max core
cycles) and the bandwidth-bound estimate (busiest DRAM channel's
occupancy) — the latter is what makes memory-traffic reduction show up
as speedup for bandwidth-bound workloads, the paper's central effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from ..cache.array_lru import BatchedPrivateFilter
from ..cache.hierarchy import PrivateCaches
from ..cache.llc_avr import AVRLLC
from ..cache.llc_baseline import BaselineLLC
from ..common.config import SystemConfig
from ..cpu.interval import IntervalCore
from ..designs import DesignSpec, get_design
from ..energy.model import EnergyBreakdown, EnergyModel
from ..memory.dram import DRAM
from ..trace.generator import GeneratedTrace

#: accesses each core executes before yielding to the next.  Fine
#: granularity matters: the AVR module's single DBUF is shared, so
#: concurrently-streaming cores contend for it (turning would-be DBUF
#: hits into compressed-block hits), as in the paper's 8-core CMP.
INTERLEAVE_CHUNK = 12

#: replay engines accepted by :meth:`TimingSystem.run`
ENGINES = ("vectorized", "reference")


@dataclass
class SimResult:
    """Everything the evaluation figures need from one timing run."""

    design: DesignSpec
    cycles: float
    instructions: int
    seconds: float
    amat_cycles: float
    llc_mpki: float
    dram_bytes_read: int
    dram_bytes_written: int
    approx_bytes: int
    exact_bytes: int
    llc_stats: dict[str, float]
    dram_stats: dict[str, float]
    energy: EnergyBreakdown
    #: per-core latency-bound cycle counts, in core-id order.  The
    #: scenario contention experiments read these to compute per-core
    #: slowdown vs a solo run; part of the engine-equivalence contract
    #: like every other replay-derived field.
    core_cycles: tuple[float, ...] = ()
    scale_factor: float = 1.0
    #: multiplier for workloads whose iteration count varies by design
    iteration_factor: float = 1.0

    @property
    def total_bytes(self) -> int:
        return self.dram_bytes_read + self.dram_bytes_written

    @property
    def adjusted_cycles(self) -> float:
        return self.cycles * self.iteration_factor

    @property
    def adjusted_energy_total(self) -> float:
        return self.energy.total * self.iteration_factor

    @property
    def adjusted_bytes(self) -> float:
        return self.total_bytes * self.iteration_factor

    #: fields outside the engine-equivalence contract: set by the
    #: harness after the replay, not derived from it
    _NON_REPLAY_FIELDS = frozenset({"iteration_factor"})

    def metric_diffs(self, other: "SimResult") -> list[str]:
        """Names of metrics that are not bit-identical to ``other``.

        The vectorized/reference equivalence contract: every
        replay-derived field must match *exactly* (``==`` on floats, no
        tolerance).  The field list is derived from the dataclass, so a
        future metric is automatically covered — growing ``SimResult``
        tightens this check rather than silently escaping it.  Used by
        the differential tests and by ``benchmarks/bench_timing.py``.
        """
        return [
            f.name
            for f in fields(self)
            if f.name not in self._NON_REPLAY_FIELDS
            and getattr(self, f.name) != getattr(other, f.name)
        ]

    def metrics_equal(self, other: "SimResult") -> bool:
        """True when every replay-derived metric is bit-identical."""
        return not self.metric_diffs(other)


class TimingSystem:
    """One design point's full machine."""

    def __init__(
        self,
        design: DesignSpec,
        config: SystemConfig,
        llc: BaselineLLC | AVRLLC,
        dram: DRAM,
    ) -> None:
        self.design = get_design(design)
        self.config = config
        self.llc = llc
        self.dram = dram

    def run(self, trace: GeneratedTrace, engine: str = "vectorized") -> SimResult:
        """Replay ``trace`` and return the run's aggregate metrics.

        Cores execute their streams in fixed-size interleaved chunks
        (see :data:`INTERLEAVE_CHUNK`) so shared-resource contention —
        the LLC, the AVR module's single DBUF, DRAM banks — is modeled
        across cores.  The returned cycle count is the slower of the
        latency-bound and bandwidth-bound estimates; callers normalize
        against a baseline run of the same trace.

        ``engine`` selects the replay implementation:

        * ``"vectorized"`` (default) — the batched fast path: all
          cores' private L1/L2 stacks are replayed as array-LRU
          matrices (:mod:`repro.cache.array_lru`) and the filtered,
          chunk-interleaved LLC-bound event stream goes through the
          LLC's own batched replay (``BaselineLLC.replay_batch`` or
          the AVR fast scan, ``AVRLLC.replay_batch``) with DRAM
          settled in bulk.
        * ``"reference"`` — the original access-at-a-time loop, kept
          as the semantic anchor for differential testing.

        Both engines produce **bit-identical** :class:`SimResult`
        metrics (enforced by ``tests/test_engine_equivalence.py`` and
        ``benchmarks/bench_timing.py --check``).

        A ``TimingSystem`` accumulates state in its LLC and DRAM
        models, so each instance should run exactly one trace.
        """
        if engine == "vectorized":
            return self._run_vectorized(trace)
        if engine == "reference":
            return self._run_reference(trace)
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")

    # ------------------------------------------------------------------
    # reference engine: one access at a time
    # ------------------------------------------------------------------
    def _run_reference(self, trace: GeneratedTrace) -> SimResult:
        """The original interleaved per-access replay loop."""
        config = self.config
        num_cores = len(trace.cores)
        cores = [IntervalCore(config.core) for _ in range(num_cores)]
        privates = [PrivateCaches(config) for _ in range(num_cores)]

        positions = [0] * num_cores
        lengths = [len(t) for t in trace.cores]
        llc = self.llc
        active = True
        while active:
            active = False
            for cid in range(num_cores):
                pos = positions[cid]
                end = min(pos + INTERLEAVE_CHUNK, lengths[cid])
                if pos >= end:
                    continue
                active = True
                core = cores[cid]
                priv = privates[cid]
                records = trace.cores[cid][pos:end]
                for rec in records:
                    addr = int(rec["addr"])
                    write = bool(rec["write"])
                    core.advance(int(rec["gap"]))
                    latency, needs_llc, writebacks = priv.access(addr, write)
                    if needs_llc:
                        latency += llc.read(addr)
                    for wb_addr, _dirty in writebacks:
                        llc.writeback(wb_addr)
                    core.memory_event(latency, l1_hit=not needs_llc and latency <= priv.l1.latency)
                positions[cid] = end

        return self._finalize(
            trace,
            cores,
            l1_accesses=sum(p.l1.accesses for p in privates),
            l2_accesses=sum(p.l2.accesses for p in privates),
        )

    # ------------------------------------------------------------------
    # vectorized engine: batched private filter + LLC event replay
    # ------------------------------------------------------------------
    def _run_vectorized(self, trace: GeneratedTrace) -> SimResult:
        """Batched replay: filter privately, then replay only LLC events.

        Three stages, equivalent to :meth:`_run_reference` access by
        access:

        1. **Private filter** — every core's L1+L2 stack is replayed in
           one batched pass (:class:`BatchedPrivateFilter`); private
           state never depends on the shared levels, so this needs no
           interleaving.
        2. **LLC event replay** — the surviving events (demand reads
           that missed L2, plus dirty L2 victim writebacks) are sorted
           into exactly the reference loop's chunk-interleaved order
           and replayed through the *same* LLC/DRAM model objects.
        3. **Cycle accounting** — per-core interval accounting is a
           sequential chain of float additions; with the LLC latencies
           from stage 2 scattered back per access, the chain folds
           vectorized (:meth:`IntervalCore.replay_batch`) to the
           bit-identical cycle count.
        """
        config = self.config
        num_cores = len(trace.cores)
        if num_cores == 0:
            return self._finalize(trace, [], l1_accesses=0, l2_accesses=0)
        cores = [IntervalCore(config.core) for _ in range(num_cores)]
        core_ids, addrs, writes, gaps, offsets = trace.concatenated()
        n = int(addrs.size)

        filt = BatchedPrivateFilter(config, num_cores).filter(
            core_ids, addrs, writes
        )

        # --- LLC-bound event stream, in the reference loop's order ----
        # Chunk pass k handles accesses [12k, 12k+12) of core 0, then of
        # core 1, ...; within one access: demand read, then the
        # insert-victim writeback, then the access-victim writeback.
        per_core_idx = np.arange(n, dtype=np.int64) - offsets[core_ids]
        chunk_key = (per_core_idx // INTERLEAVE_CHUNK) * num_cores + core_ids

        ev_valid = np.empty((n, 3), dtype=bool)
        ev_valid[:, 0] = filt.needs_llc
        ev_valid[:, 1] = filt.wb_insert_valid
        ev_valid[:, 2] = filt.wb_access_valid
        ev_addr = np.empty((n, 3), dtype=np.int64)
        ev_addr[:, 0] = addrs
        ev_addr[:, 1] = filt.wb_insert_addr
        ev_addr[:, 2] = filt.wb_access_addr
        ev_is_read = np.zeros((n, 3), dtype=bool)
        ev_is_read[:, 0] = True

        mask = ev_valid.ravel()
        flat_addr = ev_addr.ravel()[mask]
        flat_is_read = ev_is_read.ravel()[mask]
        flat_access = np.repeat(np.arange(n, dtype=np.int64), 3)[mask]
        # Stable sort: equal keys (same chunk pass, same core) keep the
        # flattened row-major order, i.e. per-core access/slot order.
        order = np.argsort(np.repeat(chunk_key, 3)[mask], kind="stable")
        flat_addr = flat_addr[order]
        flat_is_read = flat_is_read[order]
        flat_access = flat_access[order]

        # Every LLC flavour owns a batched replay of the filtered event
        # stream: BaselineLLC (baseline / Truncate / Doppelgänger)
        # replays its data array as one BatchedLRUMatrix pass, AVRLLC
        # runs its array-backed fast scan (decode pass, same-block run
        # batching, deferred DRAM settlement) — both bit-identical to
        # their per-event read()/writeback() flows.
        read_lats = self.llc.replay_batch(flat_addr, flat_is_read)[flat_is_read]

        # --- scatter LLC latencies back, fold per-core accounting -----
        llc_lat = np.zeros(n, dtype=np.int64)
        llc_lat[flat_access[flat_is_read]] = read_lats
        l1_lat, l2_lat = config.l1.latency_cycles, config.l2.latency_cycles
        latency = np.where(filt.l1_hit, l1_lat, l1_lat + l2_lat) + llc_lat
        l1_hit_flag = ~filt.needs_llc & (latency <= l1_lat)
        for c in range(num_cores):
            sl = slice(int(offsets[c]), int(offsets[c + 1]))
            cores[c].replay_batch(gaps[sl], latency[sl], l1_hit_flag[sl])

        return self._finalize(
            trace,
            cores,
            l1_accesses=filt.l1_accesses,
            l2_accesses=filt.l2_accesses,
        )

    # ------------------------------------------------------------------
    # shared metric assembly
    # ------------------------------------------------------------------
    def _finalize(
        self,
        trace: GeneratedTrace,
        cores: list[IntervalCore],
        l1_accesses: int,
        l2_accesses: int,
    ) -> SimResult:
        """Aggregate core/LLC/DRAM state into a :class:`SimResult`."""
        config = self.config
        num_cores = len(cores)
        latency_cycles = max((c.cycles for c in cores), default=0.0)
        bw_cycles = self.dram.bandwidth_bound_cycles()
        cycles = max(latency_cycles, bw_cycles)
        instructions = sum(c.instructions for c in cores)
        seconds = cycles / (config.core.frequency_ghz * 1e9)

        total_mem_accesses = sum(c.mem_accesses for c in cores)
        amat = (
            sum(c.mem_latency_total for c in cores) / total_mem_accesses
            if total_mem_accesses
            else 0.0
        )
        llc_misses = self.llc.mpki_misses
        mpki = llc_misses / (instructions / 1000.0) if instructions else 0.0

        llc_stats = dict(self.llc.stats.as_dict())
        dram_stats = dict(self.dram.stats.as_dict())
        energy = self._energy(
            instructions, l1_accesses, l2_accesses, seconds, num_cores
        )

        return SimResult(
            design=self.design,
            cycles=cycles,
            instructions=instructions,
            seconds=seconds,
            amat_cycles=amat,
            llc_mpki=mpki,
            dram_bytes_read=int(dram_stats.get("bytes_read", 0)),
            dram_bytes_written=int(dram_stats.get("bytes_written", 0)),
            approx_bytes=int(llc_stats.get("bytes_approx", 0)),
            exact_bytes=int(llc_stats.get("bytes_exact", 0)),
            llc_stats=llc_stats,
            dram_stats=dram_stats,
            energy=energy,
            core_cycles=tuple(float(c.cycles) for c in cores),
            scale_factor=trace.scale_factor,
        )

    def _energy(
        self,
        instructions: int,
        l1_accesses: int,
        l2_accesses: int,
        seconds: float,
        num_cores: int,
    ) -> EnergyBreakdown:
        """Fold per-component event counts into the Figure 10 breakdown."""
        llc_stats = self.llc.stats
        dram_lines = self.dram.total_bytes / 64.0
        compressor_ops = llc_stats.get("compressions", 0) + llc_stats.get(
            "decompressions", 0
        )
        counts = {
            "instructions": instructions,
            "l1_accesses": l1_accesses,
            "l2_accesses": l2_accesses,
            "llc_accesses": llc_stats.get("llc_hits", 0)
            + llc_stats.get("llc_misses", 0),
            "dram_lines": dram_lines,
            "compressor_ops": compressor_ops,
        }
        has_compressor = isinstance(self.llc, AVRLLC)
        return EnergyModel().compute(counts, seconds, num_cores, has_compressor)
