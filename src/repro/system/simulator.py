"""Trace-driven multicore timing simulator.

Replays per-core traces through private L1/L2 stacks, a shared LLC
(baseline, Truncate, Doppelgänger or AVR flavour) and the DDR4 model,
with interval-model cycle accounting per core.  Cores are interleaved
in fixed-size chunks so they share the LLC and DRAM realistically.

Execution time is the slower of the latency-bound estimate (max core
cycles) and the bandwidth-bound estimate (busiest DRAM channel's
occupancy) — the latter is what makes memory-traffic reduction show up
as speedup for bandwidth-bound workloads, the paper's central effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.hierarchy import PrivateCaches
from ..cache.llc_avr import AVRLLC
from ..cache.llc_baseline import BaselineLLC
from ..common.config import SystemConfig
from ..common.types import Design
from ..cpu.interval import IntervalCore
from ..energy.model import EnergyBreakdown, EnergyModel
from ..memory.dram import DRAM
from ..trace.generator import GeneratedTrace

#: accesses each core executes before yielding to the next.  Fine
#: granularity matters: the AVR module's single DBUF is shared, so
#: concurrently-streaming cores contend for it (turning would-be DBUF
#: hits into compressed-block hits), as in the paper's 8-core CMP.
INTERLEAVE_CHUNK = 12


@dataclass
class SimResult:
    """Everything the evaluation figures need from one timing run."""

    design: Design
    cycles: float
    instructions: int
    seconds: float
    amat_cycles: float
    llc_mpki: float
    dram_bytes_read: int
    dram_bytes_written: int
    approx_bytes: int
    exact_bytes: int
    llc_stats: dict[str, float]
    dram_stats: dict[str, float]
    energy: EnergyBreakdown
    scale_factor: float = 1.0
    #: multiplier for workloads whose iteration count varies by design
    iteration_factor: float = 1.0

    @property
    def total_bytes(self) -> int:
        return self.dram_bytes_read + self.dram_bytes_written

    @property
    def adjusted_cycles(self) -> float:
        return self.cycles * self.iteration_factor

    @property
    def adjusted_energy_total(self) -> float:
        return self.energy.total * self.iteration_factor

    @property
    def adjusted_bytes(self) -> float:
        return self.total_bytes * self.iteration_factor


class TimingSystem:
    """One design point's full machine."""

    def __init__(
        self,
        design: Design,
        config: SystemConfig,
        llc: BaselineLLC | AVRLLC,
        dram: DRAM,
    ) -> None:
        self.design = design
        self.config = config
        self.llc = llc
        self.dram = dram

    def run(self, trace: GeneratedTrace) -> SimResult:
        """Replay ``trace`` and return the run's aggregate metrics.

        Cores execute their streams in fixed-size interleaved chunks
        (see :data:`INTERLEAVE_CHUNK`) so shared-resource contention —
        the LLC, the AVR module's single DBUF, DRAM banks — is modeled
        across cores.  The returned cycle count is the slower of the
        latency-bound and bandwidth-bound estimates; callers normalize
        against a baseline run of the same trace.

        A ``TimingSystem`` accumulates state in its LLC and DRAM
        models, so each instance should run exactly one trace.
        """
        config = self.config
        num_cores = len(trace.cores)
        cores = [IntervalCore(config.core) for _ in range(num_cores)]
        privates = [PrivateCaches(config) for _ in range(num_cores)]

        positions = [0] * num_cores
        lengths = [len(t) for t in trace.cores]
        llc = self.llc
        active = True
        while active:
            active = False
            for cid in range(num_cores):
                pos = positions[cid]
                end = min(pos + INTERLEAVE_CHUNK, lengths[cid])
                if pos >= end:
                    continue
                active = True
                core = cores[cid]
                priv = privates[cid]
                records = trace.cores[cid][pos:end]
                for rec in records:
                    addr = int(rec["addr"])
                    write = bool(rec["write"])
                    core.advance(int(rec["gap"]))
                    latency, needs_llc, writebacks = priv.access(addr, write)
                    if needs_llc:
                        latency += llc.read(addr)
                    for wb_addr, _dirty in writebacks:
                        llc.writeback(wb_addr)
                    core.memory_event(latency, l1_hit=not needs_llc and latency <= priv.l1.latency)
                positions[cid] = end

        latency_cycles = max((c.cycles for c in cores), default=0.0)
        bw_cycles = self.dram.bandwidth_bound_cycles()
        cycles = max(latency_cycles, bw_cycles)
        instructions = sum(c.instructions for c in cores)
        seconds = cycles / (config.core.frequency_ghz * 1e9)

        total_mem_accesses = sum(c.mem_accesses for c in cores)
        amat = (
            sum(c.mem_latency_total for c in cores) / total_mem_accesses
            if total_mem_accesses
            else 0.0
        )
        llc_misses = self.llc.mpki_misses
        mpki = llc_misses / (instructions / 1000.0) if instructions else 0.0

        llc_stats = dict(self.llc.stats.as_dict())
        dram_stats = dict(self.dram.stats.as_dict())
        energy = self._energy(cores, privates, seconds, num_cores)

        return SimResult(
            design=self.design,
            cycles=cycles,
            instructions=instructions,
            seconds=seconds,
            amat_cycles=amat,
            llc_mpki=mpki,
            dram_bytes_read=int(dram_stats.get("bytes_read", 0)),
            dram_bytes_written=int(dram_stats.get("bytes_written", 0)),
            approx_bytes=int(llc_stats.get("bytes_approx", 0)),
            exact_bytes=int(llc_stats.get("bytes_exact", 0)),
            llc_stats=llc_stats,
            dram_stats=dram_stats,
            energy=energy,
            scale_factor=trace.scale_factor,
        )

    def _energy(
        self,
        cores: list[IntervalCore],
        privates: list[PrivateCaches],
        seconds: float,
        num_cores: int,
    ) -> EnergyBreakdown:
        """Fold per-component event counts into the Figure 10 breakdown."""
        llc_stats = self.llc.stats
        dram_lines = self.dram.total_bytes / 64.0
        compressor_ops = llc_stats.get("compressions", 0) + llc_stats.get(
            "decompressions", 0
        )
        counts = {
            "instructions": sum(c.instructions for c in cores),
            "l1_accesses": sum(p.l1.accesses for p in privates),
            "l2_accesses": sum(p.l2.accesses for p in privates),
            "llc_accesses": llc_stats.get("llc_hits", 0)
            + llc_stats.get("llc_misses", 0),
            "dram_lines": dram_lines,
            "compressor_ops": compressor_ops,
        }
        has_compressor = isinstance(self.llc, AVRLLC)
        return EnergyModel().compute(counts, seconds, num_cores, has_compressor)
