"""Findings: what a static-analysis rule reports.

A :class:`Finding` is one violation at one source location, carrying
the rule id, a human-readable message and (usually) a fix hint.  The
rendered form follows the conventional ``path:line:col: ID message``
layout so editors and CI annotations can parse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: rule identifier (e.g. ``"RNG001"``)
    rule: str
    #: path of the offending file, as given to the checker
    path: str
    #: 1-based source line of the offending node
    line: int
    #: 0-based column of the offending node
    col: int
    #: what is wrong, in one sentence
    message: str
    #: how to fix it (may be empty)
    hint: str = field(default="", compare=False)

    def render(self) -> str:
        """``path:line:col: RULE message  [hint]`` display form."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)
