"""KEY001/KEY002 — cache-key completeness of the spec dataclasses.

Sweep results are memoized under a content hash built by
:func:`repro.harness.cache._canonical`, which canonicalizes exactly:
dataclasses (by identity-participating fields), enums, dicts, tuples,
lists and scalars.  A spec field outside that closure either crashes
key construction at runtime or — worse, if it slips through ``repr``
— hashes by object identity and silently splits or aliases cache
entries.  Two rules keep the spec surface honest statically:

* **KEY001** walks the spec roots (``SweepPoint``, ``SweepSpec``,
  ``ScenarioPoint``, ``ExperimentSpec``, ``DesignSpec``,
  ``SystemConfig``) and every dataclass reachable from their field
  annotations, and flags any identity-participating field whose
  annotation is not statically canonicalizable.  ``compare=False``
  fields are outside a value's identity (e.g. ``DesignSpec.builder``)
  and are skipped.  Bare ``Any`` is flagged; ``Any`` nested inside a
  container is tolerated (the runtime canonicalizer still guards it).
* **KEY002** flags mutable defaults (``default_factory=list/dict/set``
  or a lambda returning a literal) on *frozen* dataclasses: a frozen
  spec with mutable state is hashable by accident and a latent
  cache-key aliasing bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import DataclassInfo, Project, SourceModule
from ..registry import Rule, register_rule

__all__ = ["CacheKeyCompleteness", "FrozenSpecMutableDefault"]

#: the dataclasses whose values reach ``content_key``; the rule chases
#: every dataclass referenced from their annotations too
SPEC_ROOTS = (
    "SweepPoint",
    "SweepSpec",
    "ScenarioPoint",
    "ExperimentSpec",
    "DesignSpec",
    "SystemConfig",
)

#: scalar annotations ``_canonical`` handles directly
_SCALARS = {"int", "float", "str", "bool", "bytes", "None"}

#: container heads ``_canonical`` recurses into
_CONTAINERS = {"tuple", "Tuple", "list", "List", "dict", "Dict"}


def _last_part(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_ok(
    node: ast.expr, project: Project, nested: bool = False
) -> tuple[bool, str]:
    """Whether an annotation stays inside the canonicalizable closure.

    Returns ``(ok, culprit)`` where ``culprit`` names the offending
    sub-expression of a failed check.
    """
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True, ""
        if isinstance(node.value, str):  # string annotation: parse it
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return False, node.value
            return _annotation_ok(parsed, project, nested)
        return False, repr(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            ok, culprit = _annotation_ok(side, project, nested)
            if not ok:
                return False, culprit
        return True, ""
    if isinstance(node, ast.Subscript):
        head = _last_part(node.value)
        elts = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        if head in _CONTAINERS:
            for elt in elts:
                if isinstance(elt, ast.Constant) and elt.value is Ellipsis:
                    continue
                ok, culprit = _annotation_ok(elt, project, nested=True)
                if not ok:
                    return False, culprit
            return True, ""
        if head in ("Optional", "Union"):
            for elt in elts:
                ok, culprit = _annotation_ok(elt, project, nested)
                if not ok:
                    return False, culprit
            return True, ""
        return False, ast.unparse(node)
    name = _last_part(node)
    if name is None:
        return False, ast.unparse(node)
    if name in _SCALARS:
        return True, ""
    if name == "Any":
        # Nested Any is runtime-guarded by _canonical's TypeError;
        # a field that is *entirely* Any escapes all static checking.
        return (True, "") if nested else (False, "Any")
    if name in project.enums or name in project.dataclasses:
        return True, ""
    return False, name


def _reachable_specs(project: Project) -> dict[str, DataclassInfo]:
    """Spec roots plus every dataclass their annotations reference."""
    queue = [name for name in SPEC_ROOTS if name in project.dataclasses]
    seen: dict[str, DataclassInfo] = {}
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        info = project.dataclasses[name]
        seen[name] = info
        for field in info.fields:
            if not field.compare:
                continue  # outside identity: never canonicalized
            for node in ast.walk(field.annotation):
                ref = _last_part(node)
                if ref in project.dataclasses and ref not in seen:
                    queue.append(ref)
    return seen


@register_rule
class CacheKeyCompleteness(Rule):
    """Flag spec fields the cache canonicalizer cannot cover."""

    id = "KEY001"
    name = "cache-key-completeness"
    summary = (
        "every identity field of the spec dataclasses (SweepPoint, "
        "ExperimentSpec, DesignSpec, SystemConfig, ...) must be a type "
        "harness/cache._canonical can canonicalize"
    )
    hint = (
        "use scalars/tuples/enums/spec dataclasses, or mark the field "
        "field(compare=False) to exclude it from identity"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        for info in _reachable_specs(project).values():
            if info.module is not module:
                continue
            for field in info.fields:
                if not field.compare:
                    continue
                ok, culprit = _annotation_ok(field.annotation, project)
                if ok:
                    continue
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=field.line,
                    col=field.col,
                    message=(
                        f"spec field {info.name}.{field.name} has "
                        f"annotation {ast.unparse(field.annotation)!r} "
                        f"whose component {culprit!r} is not statically "
                        "canonicalizable into a cache key"
                    ),
                    hint=self.hint,
                )


_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _mutable_factory(node: ast.expr) -> str | None:
    """Name of a known-mutable default factory, if ``node`` is one."""
    name = _last_part(node)
    if name in _MUTABLE_FACTORIES:
        return name
    if isinstance(node, ast.Lambda) and isinstance(
        node.body, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)
    ):
        return "lambda"
    return None


@register_rule
class FrozenSpecMutableDefault(Rule):
    """Flag mutable default factories on frozen dataclasses."""

    id = "KEY002"
    name = "frozen-spec-mutable-default"
    summary = (
        "frozen spec dataclasses must not carry mutable defaults "
        "(default_factory=list/dict/set): hashable-by-accident state "
        "aliases cache keys"
    )
    hint = "use a tuple default (or drop frozen=True if state is intended)"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        for info in project.dataclasses.values():
            if info.module is not module or not info.frozen:
                continue
            for field in info.fields:
                if field.default_factory is None:
                    continue
                factory = _mutable_factory(field.default_factory)
                if factory is None:
                    continue
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=field.line,
                    col=field.col,
                    message=(
                        f"frozen dataclass field {info.name}."
                        f"{field.name} defaults to mutable "
                        f"{factory!r} via default_factory"
                    ),
                    hint=self.hint,
                )
