"""DTY001 — explicit dtypes in kernel allocations.

``np.arange(n)`` is int64 on Linux and int32 on Windows: any array
that feeds address arithmetic, trace records or cache-state matrices
silently changes width (and overflow behaviour) with the platform's
default int.  The repository's bit-identity guarantees — reference ↔
vectorized engine equivalence, content-keyed trace stores — only hold
when every allocation in the kernel sub-packages (``trace/``,
``cache/``, ``system/``) pins its dtype explicitly.

The rule flags ``np.arange`` / ``np.empty`` / ``np.zeros`` /
``np.ones`` / ``np.full`` / ``np.array`` calls without a ``dtype=``
keyword in those sub-packages.  ``*_like`` constructors inherit their
prototype's dtype and are exempt.  A call whose platform-default dtype
is genuinely intended documents it with ``# repro: ignore[DTY001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule, dotted_name
from ..registry import Rule, register_rule

__all__ = ["DtypeDiscipline"]

#: numpy constructors whose dtype floats with the platform default,
#: mapped to the 0-based positional index their dtype argument takes
_CONSTRUCTORS = {
    "numpy.arange": 3,  # arange(start, stop, step, dtype)
    "numpy.empty": 1,
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.full": 2,  # full(shape, fill_value, dtype)
    "numpy.array": 1,
}


@register_rule
class DtypeDiscipline(Rule):
    """Flag dtype-less numpy allocations in the kernel sub-packages."""

    id = "DTY001"
    name = "dtype-discipline"
    summary = (
        "np.arange/empty/zeros/ones/full/array in trace/, cache/ and "
        "system/ must pin dtype= — platform-default int width breaks "
        "bit-identity"
    )
    hint = "pass an explicit dtype (np.int64 for addresses and indexes)"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        if not module.in_kernel_subpackage:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.imports)
            if resolved not in _CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _CONSTRUCTORS[resolved]:
                continue  # dtype passed positionally
            tail = resolved.removeprefix("numpy.")
            yield Finding(
                rule=self.id,
                path=module.display,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"np.{tail}(...) without an explicit dtype in a "
                    "kernel module: the platform default int decides "
                    "the array's width"
                ),
                hint=self.hint,
            )
