"""PLN001 — planner seed discipline.

The planner's one behavioural guarantee is that planning is a pure
function of ``(PlanSpec, seed)``: the same spec and seed must produce
the identical plan — rung populations, promotions, front — on every
machine and every run.  RNG001 already bans *unseeded* generators
repo-wide; the planner needs a stricter contract on top of it, because
a generator that is seeded but not *threaded* still breaks plans in
two ways this rule flags:

* **module-level RNG state** — a ``Generator`` (or ``SeedSequence``)
  constructed at import time is shared across every plan in the
  process, so a plan's outcome depends on which plans ran before it;
* **literal-constant seeds** — ``default_rng(0)`` buried inside a
  planner module silently ignores ``PlanSpec.seed``, so two specs with
  different seeds plan identically and the determinism knob is dead.

Every stochastic choice in ``repro.planner`` must instead draw from a
``Generator`` constructed from the spec's seed and passed down
explicitly (see ``repro.planner.engine``).  Applies only to modules
under ``planner/``; a deliberate exception takes an inline
``# repro: ignore[PLN001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule, dotted_name
from ..registry import Rule, register_rule

__all__ = ["PlannerSeedDiscipline"]

#: RNG entry points whose construction this rule audits
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}


def _function_scoped_nodes(tree: ast.Module) -> set[int]:
    """Ids of every AST node enclosed in a function body."""
    scoped: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                scoped.add(id(child))
    return scoped


def _seed_arguments(node: ast.Call) -> Iterator[ast.expr]:
    """The expressions a RNG constructor call derives its state from."""
    yield from node.args
    for keyword in node.keywords:
        if keyword.arg in (None, "seed", "entropy"):
            yield keyword.value


@register_rule
class PlannerSeedDiscipline(Rule):
    """Flag planner RNG state that is not threaded from an explicit seed."""

    id = "PLN001"
    name = "planner-seed-discipline"
    summary = (
        "planner modules must thread an explicit seed/Generator into "
        "every stochastic choice — no module-level RNG state, no "
        "literal-constant seeds"
    )
    hint = (
        "construct the Generator from PlanSpec.seed inside the caller "
        "and pass it down explicitly"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        sub = module.package_path
        if sub is None or sub.split("/", 1)[0] != "planner":
            return
        scoped = _function_scoped_nodes(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.imports)
            if resolved not in _RNG_CONSTRUCTORS:
                continue
            tail = resolved.rsplit(".", 1)[-1]
            if id(node) not in scoped:
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"module-level np.random.{tail}(...) creates RNG "
                        "state shared across plans; construct it per plan "
                        "from the spec seed"
                    ),
                    hint=self.hint,
                )
                continue
            for argument in _seed_arguments(node):
                if isinstance(argument, ast.Constant) and isinstance(
                    argument.value, (int, float)
                ):
                    yield Finding(
                        rule=self.id,
                        path=module.display,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"np.random.{tail}({argument.value!r}) hard-codes "
                            "the seed inside a planner module, bypassing "
                            "PlanSpec.seed"
                        ),
                        hint=self.hint,
                    )
                    break
