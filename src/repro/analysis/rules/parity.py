"""PAR001 — engine parity for batched replay paths.

Every vectorized fast path in this repository is licensed by a
retained reference implementation and a differential test pinning the
two bit-identical (the PR 2 timing engine, the PR 3 AVR replay, the
PR 6 trace generator all ship that way).  The convention is easy to
erode: a new ``replay_batch`` without a scalar counterpart, or without
a differential test, compiles and runs — it just stops being
*verifiable*.

This rule checks every class that defines a ``replay_batch`` method:

* the class must also define a per-event reference path (``read``,
  ``access``, ``replay`` or ``memory_event``) that the batch path can
  be diffed against,
* the class name must appear in at least one differential test module
  (a ``tests/test_*equivalence*.py`` file), so the parity is actually
  exercised.

The test-presence check needs the test tree; when the checker runs
without one (``repro check --tests none``), only the structural check
applies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule
from ..registry import Rule, register_rule

__all__ = ["EngineParity"]

#: method names that count as the scalar reference path
#: (``memory_event`` is the interval core's per-access twin)
_REFERENCE_METHODS = ("read", "access", "replay", "memory_event")


@register_rule
class EngineParity(Rule):
    """Flag batched replay paths without a verified reference twin."""

    id = "PAR001"
    name = "engine-parity"
    summary = (
        "every class defining replay_batch must keep a scalar "
        "reference path (read/access/replay) and appear in a "
        "differential (equivalence) test module"
    )
    hint = (
        "retain the per-event path and pin bit-identity in "
        "tests/test_*equivalence*.py"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "replay_batch" not in methods:
                continue
            if not methods.intersection(_REFERENCE_METHODS):
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"class {node.name} defines replay_batch but no "
                        "scalar reference path "
                        f"({'/'.join(_REFERENCE_METHODS)}) to diff it "
                        "against"
                    ),
                    hint=self.hint,
                )
            if (
                project.test_text is not None
                and node.name not in project.test_text
            ):
                tests = ", ".join(project.test_files) or "<none found>"
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"class {node.name} defines replay_batch but "
                        "appears in no differential test module "
                        f"(searched: {tests})"
                    ),
                    hint=self.hint,
                )
