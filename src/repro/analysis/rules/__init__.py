"""Shipped analysis rules.

Importing this package registers every built-in rule with the
:mod:`repro.analysis.registry`; the catalogue order below is the
order ``repro check --list-rules`` displays.
"""

from __future__ import annotations

from . import (
    cachefile,
    cachekey,
    docstrings,
    dtype,
    parity,
    picklable,
    planner,
    rng,
    serve,
)

__all__ = [
    "cachefile", "cachekey", "docstrings", "dtype", "parity", "picklable",
    "planner", "rng", "serve",
]
