"""PKL001 — job units and registry hooks must pickle.

The sweep engine fans job units out over a
``ProcessPoolExecutor``; everything submitted to the pool — job
functions, their arguments, and the ``DesignSpec.builder`` hooks
carried inside specs — crosses a process boundary by pickling.
Lambdas and functions defined inside another function do not pickle,
and the failure surfaces only when a sweep first runs with ``jobs>1``
(often in CI, long after the code merged).  This rule catches the two
patterns statically:

* a ``builder=`` keyword argument (the ``DesignSpec`` /
  ``register_design`` hook seam) bound to a lambda or to a function
  defined in a local scope,
* a lambda submitted directly to an executor (``pool.submit(lambda:
  ...)``) or wrapped in ``functools.partial``.

Module-level functions (and ``functools.partial`` over them) pickle
fine and never fire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule, dotted_name
from ..registry import Rule, register_rule

__all__ = ["PicklableHooks"]


def _local_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function's body."""
    local: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local.add(inner.name)
    return local


@register_rule
class PicklableHooks(Rule):
    """Flag unpicklable callables bound to job-unit/builder seams."""

    id = "PKL001"
    name = "picklable-hooks"
    summary = (
        "no lambdas or local functions as builder= hooks or executor "
        "submissions — job units must pickle into pool workers"
    )
    hint = "define the callable at module level so it pickles"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        local_fns = _local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_builder_kwargs(node, module, local_fns)
            yield from self._check_submissions(node, module)

    def _check_builder_kwargs(
        self, node: ast.Call, module: SourceModule, local_fns: set[str]
    ) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg != "builder":
                continue
            if isinstance(kw.value, ast.Lambda):
                what = "a lambda"
            elif isinstance(kw.value, ast.Name) and kw.value.id in local_fns:
                what = f"local function {kw.value.id!r}"
            else:
                continue
            yield Finding(
                rule=self.id,
                path=module.display,
                line=kw.value.lineno,
                col=kw.value.col_offset,
                message=(
                    f"builder hook bound to {what}: it cannot pickle "
                    "into sweep worker processes"
                ),
                hint=self.hint,
            )

    def _check_submissions(
        self, node: ast.Call, module: SourceModule
    ) -> Iterator[Finding]:
        func = node.func
        is_submit = isinstance(func, ast.Attribute) and func.attr in (
            "submit",
            "map",
        )
        is_partial = dotted_name(func, module.imports) == "functools.partial"
        if not (is_submit or is_partial) or not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Lambda):
            seam = "functools.partial" if is_partial else "executor submission"
            yield Finding(
                rule=self.id,
                path=module.display,
                line=first.lineno,
                col=first.col_offset,
                message=(
                    f"lambda passed to {seam}: it cannot pickle into "
                    "sweep worker processes"
                ),
                hint=self.hint,
            )
