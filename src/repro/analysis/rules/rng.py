"""RNG001 — RNG and wall-clock discipline.

Every result in this repository is a pure function of its spec:
content-hash cache keys, differential reference↔vectorized tests and
cross-process sweep reassembly all assume that re-running a job
reproduces it bit-identically.  One unseeded generator or wall-clock
read silently breaks that contract, so this rule flags:

* ``np.random.default_rng()`` called without a seed,
* the legacy global-state ``np.random.*`` sampling API
  (``np.random.seed`` / ``rand`` / ``randint`` / ...),
* the stdlib ``random`` module's functions,
* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, ...).

Seeded construction (``np.random.default_rng(seed)``,
``SeedSequence(seed).spawn(...)``) is the sanctioned pattern and never
fires.  Benchmarks live outside ``src/repro`` and may time things;
inside the package, a deliberate exception takes an inline
``# repro: ignore[RNG001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule, dotted_name
from ..registry import Rule, register_rule

__all__ = ["RngDiscipline"]

#: numpy.random attributes that are part of the seeded-Generator API
#: (everything else on numpy.random is the legacy global-state surface)
_SANCTIONED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: wall-clock calls that make results depend on when they ran
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class RngDiscipline(Rule):
    """Flag unseeded RNG construction, legacy RNG APIs and wall-clock reads."""

    id = "RNG001"
    name = "rng-discipline"
    summary = (
        "no unseeded default_rng(), legacy np.random.* / random.* "
        "calls, or wall-clock reads — determinism backs cache keys "
        "and differential tests"
    )
    hint = "derive randomness from the spec seed via np.random.SeedSequence"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.imports)
            if resolved is None:
                continue
            message = self._violation(resolved, node)
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                    hint=self.hint,
                )

    def _violation(self, resolved: str, node: ast.Call) -> str | None:
        if resolved == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                return (
                    "np.random.default_rng() without a seed: results "
                    "become irreproducible and cache keys meaningless"
                )
            return None
        if resolved.startswith("numpy.random."):
            tail = resolved.removeprefix("numpy.random.")
            if tail not in _SANCTIONED_NP_RANDOM:
                return (
                    f"legacy global-state numpy RNG call np.random.{tail}(); "
                    "use an explicitly seeded np.random.Generator"
                )
            return None
        if resolved.startswith("random."):
            tail = resolved.removeprefix("random.")
            if "." not in tail:
                return (
                    f"stdlib random.{tail}() draws from hidden global "
                    "state; use an explicitly seeded np.random.Generator"
                )
            return None
        if resolved in _WALL_CLOCK:
            return (
                f"wall-clock call {resolved}() makes results depend on "
                "when they ran"
            )
        return None
