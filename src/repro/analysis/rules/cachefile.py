"""CCH001 — cache storage stays behind the backend protocol.

Every on-disk cache access in the package goes through the
:class:`repro.harness.cache.CacheBackend` protocol.  That boundary is
what makes the backend stack pluggable (sharded / memory-tier /
read-through), keeps the per-shard ``index.jsonl`` consistent with the
payload files, and lets ``repro cache gc``/``verify`` reason about the
store as a whole.  A direct ``pickle.load`` on a ``*.pkl`` path — or a
hand-built ``<shard>/<key>.pkl`` string — outside ``harness/cache.py``
reads entries without index accounting and writes entries the index
never learns about, so this rule flags, everywhere else in the
package:

* calls to ``pickle.load`` / ``loads`` / ``dump`` / ``dumps`` (the
  cache's payload codec; module code pickles only via the backend or
  implicitly via multiprocessing),
* ``".pkl"`` string literals (building cache payload paths by hand).

``harness/cache.py`` is the single sanctioned implementation site.
Tests, benchmarks and CI scripts live outside ``src/repro`` and may
poke the layout directly; a deliberate in-package exception takes an
inline ``# repro: ignore[CCH001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule, dotted_name
from ..registry import Rule, register_rule

__all__ = ["CacheFileDiscipline"]

#: the one module allowed to touch payload files and indexes directly
_IMPLEMENTATION = "harness/cache.py"

#: the payload codec's entry points
_PICKLE_CALLS = {
    "pickle.load",
    "pickle.loads",
    "pickle.dump",
    "pickle.dumps",
}


@register_rule
class CacheFileDiscipline(Rule):
    """Flag direct cache-payload I/O outside the backend implementation."""

    id = "CCH001"
    name = "cache-file-discipline"
    summary = (
        "cache payloads are read and written only through CacheBackend "
        "— no pickle.* calls or '.pkl' paths outside harness/cache.py"
    )
    hint = "go through ResultCache / CacheBackend (repro.harness.cache)"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        if module.package_path == _IMPLEMENTATION:
            return
        for node in ast.walk(module.tree):
            message: str | None = None
            if isinstance(node, ast.Call):
                resolved = dotted_name(node.func, module.imports)
                if resolved in _PICKLE_CALLS:
                    message = (
                        f"direct {resolved}() call: cache payloads are "
                        "(un)pickled only by the CacheBackend "
                        "implementation, which keeps the shard indexes "
                        "and traffic stats honest"
                    )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value.endswith(".pkl")  # repro: ignore[CCH001]
            ):
                message = (
                    f"hand-built cache payload path {node.value!r}: "
                    "entries addressed behind the index's back break "
                    "gc/verify bookkeeping"
                )
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                    hint=self.hint,
                )
