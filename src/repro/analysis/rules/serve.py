"""SRV001 — async discipline for the evaluation service.

The ``repro.serve`` daemon multiplexes every client onto one event
loop, so a single blocking call inside a coroutine stalls *all*
sessions at once — and a wall-clock read inside the service layer
reintroduces exactly the time-dependence RNG001 banishes from results.
This rule extends that discipline to the async layer.  Inside
``serve/`` modules it flags:

* **blocking calls inside coroutines** — ``time.sleep`` (use
  ``asyncio.sleep``) and the synchronous ``socket`` API
  (``socket.socket`` / ``create_connection`` / ...; coroutines must
  use asyncio streams — the synchronous :class:`ServeClient` lives in
  plain functions, which this rule deliberately does not touch);
* **wall-clock reads inside coroutines** — ``time.time`` and friends;
  daemon-side timing (uptime, latency) must come from the event
  loop's monotonic ``loop.time()``;
* **unthreaded RNG state anywhere in a serve module** — module-level
  generators or literal-constant seeds (the PLN001 contract): any
  randomness a service path needs must be threaded from the
  submission's spec seed, never minted by the daemon, or two clients
  submitting the same spec would receive different results.

A deliberate exception takes an inline ``# repro: ignore[SRV001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule, dotted_name
from ..registry import Rule, register_rule
from .planner import _RNG_CONSTRUCTORS, _function_scoped_nodes, _seed_arguments
from .rng import _WALL_CLOCK

__all__ = ["ServeAsyncDiscipline"]

#: synchronous calls that stall the event loop when awaited around
_BLOCKING_CALLS = {
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "socket.create_server",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "socket.socketpair",
}


def _coroutine_nodes(tree: ast.Module) -> set[int]:
    """Ids of every AST node enclosed in an ``async def`` body.

    Nested synchronous helpers defined *inside* a coroutine still run
    on the loop thread when called from it, so they stay included.
    """
    scoped: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            for child in ast.walk(node):
                scoped.add(id(child))
    return scoped


@register_rule
class ServeAsyncDiscipline(Rule):
    """Flag blocking/wall-clock calls in serve coroutines and daemon RNG."""

    id = "SRV001"
    name = "serve-async-discipline"
    summary = (
        "serve coroutines must not block (time.sleep, sync socket "
        "ops) or read the wall clock; serve RNG must be threaded "
        "from the spec seed"
    )
    hint = (
        "use asyncio.sleep / asyncio streams / loop.time() inside "
        "coroutines, and thread any RNG from the submitted spec's seed"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        sub = module.package_path
        if sub is None or sub.split("/", 1)[0] != "serve":
            return
        in_coroutine = _coroutine_nodes(module.tree)
        in_function = _function_scoped_nodes(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.imports)
            if resolved is None:
                continue
            if id(node) in in_coroutine:
                message = self._coroutine_violation(resolved)
                if message is not None:
                    yield Finding(
                        rule=self.id,
                        path=module.display,
                        line=node.lineno,
                        col=node.col_offset,
                        message=message,
                        hint=self.hint,
                    )
                    continue
            message = self._rng_violation(resolved, node, id(node) in in_function)
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                    hint=self.hint,
                )

    def _coroutine_violation(self, resolved: str) -> str | None:
        if resolved == "time.sleep":
            return (
                "time.sleep() inside a coroutine stalls every session "
                "on the event loop; use asyncio.sleep()"
            )
        if resolved in _BLOCKING_CALLS or resolved.startswith("socket."):
            return (
                f"blocking socket call {resolved}() inside a coroutine; "
                "use asyncio streams (open_connection / start_server)"
            )
        if resolved in _WALL_CLOCK:
            return (
                f"wall-clock call {resolved}() inside a serve coroutine; "
                "daemon timing must use the loop's monotonic loop.time()"
            )
        return None

    def _rng_violation(
        self, resolved: str, node: ast.Call, scoped: bool
    ) -> str | None:
        if resolved not in _RNG_CONSTRUCTORS:
            return None
        tail = resolved.rsplit(".", 1)[-1]
        if not scoped:
            return (
                f"module-level np.random.{tail}(...) creates RNG state "
                "shared across every session; thread it from the "
                "submitted spec's seed"
            )
        for argument in _seed_arguments(node):
            if isinstance(argument, ast.Constant) and isinstance(
                argument.value, (int, float)
            ):
                return (
                    f"np.random.{tail}({argument.value!r}) hard-codes a "
                    "seed inside the service layer, bypassing the "
                    "submitted spec's seed"
                )
        return None
