"""DOC001 — docstring coverage for exported names.

The package's public surface is its documentation of record: the
architecture docs link into module docstrings, and the CLI/registry
help strings render from them.  This rule requires a docstring on

* every module,
* every public top-level class and function — the names listed in
  ``__all__`` when the module defines one, otherwise every top-level
  definition whose name does not start with an underscore.

Private helpers (single leading underscore) are exempt, as are
nested definitions and methods (class docstrings are expected to
document the object's surface).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceModule
from ..registry import Rule, register_rule

__all__ = ["PublicDocstrings"]


def _declared_all(tree: ast.Module) -> set[str] | None:
    """Names listed in a module-level ``__all__``, if statically given."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    return {
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    }
    return None


@register_rule
class PublicDocstrings(Rule):
    """Flag exported modules/classes/functions without docstrings."""

    id = "DOC001"
    name = "public-docstrings"
    summary = (
        "modules and exported top-level classes/functions (__all__, "
        "else every public name) must carry docstrings"
    )
    hint = "add a docstring (or underscore-prefix a private helper)"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        if ast.get_docstring(module.tree) is None:
            yield Finding(
                rule=self.id,
                path=module.display,
                line=1,
                col=0,
                message="module has no docstring",
                hint=self.hint,
            )
        exported = _declared_all(module.tree)
        for node in module.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if exported is not None:
                if node.name not in exported:
                    continue
            elif node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield Finding(
                    rule=self.id,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=f"exported {kind} {node.name} has no docstring",
                    hint=self.hint,
                )
