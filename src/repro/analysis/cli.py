"""The ``repro check`` subcommand.

Runs the repo-invariant static analysis pass over a source tree and
reports findings in ``path:line:col: RULE message`` form.  Exit codes
follow lint-tool convention: ``0`` clean, ``1`` findings, ``2`` usage
error — CI gates on it next to ``ruff check`` and ``mypy --strict``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import run_check
from .registry import all_rules

__all__ = ["add_check_arguments", "cmd_check"]

#: trees scanned when the command is given no paths
DEFAULT_PATHS = ("src/repro",)


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to check (default: src/repro, else "
             "the installed repro package)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids or names to run "
             "(default: every rule)",
    )
    parser.add_argument(
        "--tests", default="tests", metavar="DIR|none",
        help="test tree the engine-parity rule searches for "
             "differential coverage (default: ./tests; 'none' skips "
             "the test-presence check)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _default_paths() -> list[str]:
    """``src/repro`` when run from a checkout, else the package itself."""
    for candidate in DEFAULT_PATHS:
        if Path(candidate).is_dir():
            return [candidate]
    return [str(Path(__file__).resolve().parent.parent)]


def _print_rule_catalogue() -> None:
    print("registered analysis rules:")
    for cls in all_rules():
        print(f"  {cls.id}  {cls.name}")
        print(f"         {cls.summary}")
        if cls.hint:
            print(f"         fix: {cls.hint}")
    print(
        'suppress one site with an inline "# repro: ignore[RULE]" '
        "comment on the reported line."
    )


def cmd_check(args: argparse.Namespace) -> int:
    """Entry point wired into ``repro.__main__``."""
    if args.list_rules:
        _print_rule_catalogue()
        return 0
    select = (
        [r for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    tests = None if args.tests == "none" else args.tests
    try:
        result = run_check(
            args.paths or _default_paths(), select=select, tests=tests
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in result.findings:
        print(finding.render())
    tail = f"{result.files_checked} file(s) checked"
    if result.suppressed:
        tail += f", {result.suppressed} finding(s) suppressed inline"
    if result.findings:
        print(f"{len(result.findings)} finding(s), {tail}", file=sys.stderr)
        return 1
    print(f"clean: {tail}")
    return 0
