"""Rule registry: analysis rules as registrable, documented values.

Mirrors the :mod:`repro.designs` registry idiom — a rule is a class
with an ``id``, a one-line ``summary`` and a ``doc`` paragraph,
registered by decorating it with :func:`register_rule`; ``repro check
--list-rules`` renders the catalogue straight from the registry, so a
new rule is one decorated class and nothing else.
"""

from __future__ import annotations

import abc
from difflib import get_close_matches
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .findings import Finding
    from .project import Project, SourceModule

__all__ = ["Rule", "all_rules", "get_rule", "register_rule", "resolve_rules"]


class Rule(abc.ABC):
    """One static check: inspects a module, yields findings.

    Subclasses set the class attributes and implement :meth:`check`.
    Rules are stateless — one instance is created per ``run_check``
    call and visits every module, with the shared :class:`Project`
    carrying any cross-module context.
    """

    #: stable identifier, ``<AREA><NNN>`` (e.g. ``"RNG001"``)
    id: ClassVar[str]
    #: short kebab-case name (e.g. ``"rng-discipline"``)
    name: ClassVar[str]
    #: one-line summary shown by ``--list-rules``
    summary: ClassVar[str]
    #: default fix hint attached to findings (rules may override per site)
    hint: ClassVar[str] = ""

    @abc.abstractmethod
    def check(
        self, module: "SourceModule", project: "Project"
    ) -> Iterator["Finding"]:
        """Yield every violation of this rule in ``module``."""


_RULES: dict[str, type[Rule]] = {}

R = TypeVar("R", bound=type[Rule])


def register_rule(cls: R) -> R:
    """Class decorator adding a rule to the registry.

    Re-registering the same class is a no-op (module re-imports stay
    idempotent); registering a different class under a taken id is an
    error.
    """
    existing = _RULES.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"rule id {cls.id!r} is already registered")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> tuple[type[Rule], ...]:
    """Every registered rule class, in registration (catalogue) order."""
    return tuple(_RULES.values())


def get_rule(rule_id: str) -> type[Rule]:
    """Resolve a rule id (or kebab-case name), with suggestions."""
    wanted = rule_id.strip()
    for cls in _RULES.values():
        if wanted.upper() == cls.id or wanted.lower() == cls.name:
            return cls
    known = [cls.id for cls in _RULES.values()]
    close = get_close_matches(wanted.upper(), known, n=3, cutoff=0.4)
    hint = f"; did you mean {', '.join(close)}?" if close else ""
    raise ValueError(
        f"unknown rule {rule_id!r}{hint} known rules: {', '.join(known)}"
    )


def resolve_rules(selection: Iterable[str] | None) -> tuple[type[Rule], ...]:
    """Resolve a ``--select`` list (None: every registered rule)."""
    if selection is None:
        return all_rules()
    return tuple(get_rule(r) for r in selection)
