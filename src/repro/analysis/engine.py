"""Check engine: walk files, run rules, filter suppressions.

:func:`run_check` is the programmatic entry point (the ``repro
check`` subcommand is a thin shell around it): it loads every ``.py``
file under the given paths into a :class:`~repro.analysis.project.
Project`, indexes the cross-module context rules need (dataclasses,
enums, the differential test suite), runs every selected rule over
every module, and drops findings whose line carries a matching
``# repro: ignore[RULE]`` marker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding
from .project import Project, index_module, load_module
from .registry import Rule, resolve_rules

__all__ = ["CheckResult", "collect_files", "load_project", "run_check"]

#: rule id attached to files the parser rejects outright
PARSE_ERROR_RULE = "PARSE"

#: directory names never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass
class CheckResult:
    """Outcome of one :func:`run_check` call."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: findings dropped by inline ``# repro: ignore[...]`` markers
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the checked tree is clean."""
        return not self.findings


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _display_path(path: Path) -> str:
    """Repo-relative display form when possible, else the path as-is."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return str(path)


def _load_tests(tests: str | Path | None) -> tuple[str | None, tuple[str, ...]]:
    """Concatenate the differential test modules PAR001 searches."""
    if tests is None:
        return None, ()
    root = Path(tests)
    if not root.is_dir():
        return None, ()
    files = sorted(root.glob("test_*equivalence*.py"))
    if not files:
        # Fall back to the whole test tree: parity can be pinned in a
        # subsystem suite (e.g. test_array_lru.py's differential tests).
        files = sorted(root.glob("test_*.py"))
    text = "\n".join(f.read_text() for f in files)
    return text, tuple(f.name for f in files)


def load_project(
    paths: Iterable[str | Path],
    tests: str | Path | None = None,
) -> tuple[Project, list[Finding]]:
    """Parse and index every file; unparsable files become findings."""
    project = Project()
    parse_errors: list[Finding] = []
    for path in collect_files(paths):
        display = _display_path(path)
        try:
            module = load_module(path, display)
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        project.modules.append(module)
        index_module(project, module)
    project.test_text, project.test_files = _load_tests(tests)
    return project, parse_errors


def run_check(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    tests: str | Path | None = None,
) -> CheckResult:
    """Run the selected rules over ``paths``.

    ``select`` narrows the rule set (ids or kebab-case names);
    ``tests`` points the engine at the test tree the engine-parity
    rule searches (None: structural checks only).  Findings come back
    sorted by file and position; suppressed findings are counted but
    not returned.
    """
    rule_classes = resolve_rules(select)
    project, parse_errors = load_project(paths, tests=tests)
    result = CheckResult(files_checked=len(project.modules) + len(parse_errors))
    result.findings.extend(parse_errors)
    rules: list[Rule] = [cls() for cls in rule_classes]
    for module in project.modules:
        for rule in rules:
            for finding in rule.check(module, project):
                if module.suppressed(finding.rule, finding.line):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    return result
