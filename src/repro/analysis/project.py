"""Project model the analysis rules run against.

A :class:`SourceModule` is one parsed file: its AST, raw source lines,
the ``# repro: ignore[...]`` suppressions found in it, and an import
map that resolves local names back to the dotted modules they came
from (so a rule can recognize ``np.random.default_rng`` however numpy
was imported).  A :class:`Project` is the whole scanned tree plus the
cross-module indexes some rules need: every dataclass and enum
definition (cache-key completeness) and the concatenated text of the
test suite (engine parity).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "DataclassField",
    "DataclassInfo",
    "Project",
    "SourceModule",
    "dotted_name",
    "load_module",
]

#: kernel sub-packages where explicit dtypes are mandatory (DTY001)
KERNEL_SUBPACKAGES = ("trace", "cache", "system")

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass(frozen=True)
class DataclassField:
    """One field of a scanned dataclass definition."""

    name: str
    #: the annotation expression (never None for AnnAssign fields)
    annotation: ast.expr
    #: ``field(compare=False)`` fields are outside the value's identity
    compare: bool
    #: the ``default_factory=...`` expression, if any
    default_factory: ast.expr | None
    line: int
    col: int


@dataclass(frozen=True)
class DataclassInfo:
    """One ``@dataclass``-decorated class definition."""

    name: str
    module: "SourceModule"
    frozen: bool
    fields: tuple[DataclassField, ...]
    line: int


@dataclass
class SourceModule:
    """One parsed source file plus per-file rule context."""

    path: Path
    #: path as displayed in findings (relative where possible)
    display: str
    tree: ast.Module
    lines: tuple[str, ...]
    #: ``{line: frozenset of rule ids}``; ``None`` suppresses all rules
    suppressions: dict[int, frozenset[str] | None]
    #: ``{local name: dotted module/attribute it aliases}``
    imports: dict[str, str]

    @property
    def package_path(self) -> str | None:
        """Posix sub-path inside the ``repro`` package, if any.

        ``.../src/repro/trace/store.py`` maps to ``trace/store.py``;
        files outside a ``repro`` package (e.g. test fixtures) map to
        ``None``, which rules treat as "apply everywhere".
        """
        parts = self.path.parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return "/".join(parts[i + 1:])
        return None

    @property
    def in_kernel_subpackage(self) -> bool:
        """Whether explicit-dtype discipline (DTY001) applies here."""
        sub = self.package_path
        if sub is None:
            return True  # fixture files: always apply
        return sub.split("/", 1)[0] in KERNEL_SUBPACKAGES

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed on ``line``."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule_id in rules


@dataclass
class Project:
    """Every scanned module plus the cross-module rule indexes."""

    modules: list[SourceModule] = field(default_factory=list)
    #: dataclass definitions by class name (last definition wins)
    dataclasses: dict[str, DataclassInfo] = field(default_factory=dict)
    #: names of ``enum.Enum``-family classes defined in the tree
    enums: set[str] = field(default_factory=set)
    #: concatenated text of the test suite (None: no tests located)
    test_text: str | None = None
    #: file names of the test modules folded into ``test_text``
    test_files: tuple[str, ...] = ()


def _parse_suppressions(lines: tuple[str, ...]) -> dict[int, frozenset[str] | None]:
    """Extract ``# repro: ignore[RULE,...]`` markers per source line."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None or not rules.strip():
            out[lineno] = None  # bare "repro: ignore": every rule
        else:
            out[lineno] = frozenset(
                r.strip() for r in rules.split(",") if r.strip()
            )
    return out


def _parse_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted modules/attributes they alias."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # "import a.b" binds "a"
                    head = alias.name.split(".", 1)[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports resolve inside the package
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its dotted form, through imports.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    under ``import numpy as np``; chains not rooted in a plain name
    (calls, subscripts) resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


def _dataclass_decorator(node: ast.ClassDef) -> ast.Call | ast.expr | None:
    """The ``@dataclass`` decorator of a class, if present."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return dec
    return None


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Name) and target.id == "ClassVar"
    ) or (
        isinstance(target, ast.Attribute) and target.attr == "ClassVar"
    )


def _field_flags(value: ast.expr | None) -> tuple[bool, ast.expr | None]:
    """``(compare, default_factory)`` from a field's default expression."""
    compare = True
    factory: ast.expr | None = None
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name == "field":
            for kw in value.keywords:
                if kw.arg == "compare" and isinstance(kw.value, ast.Constant):
                    compare = bool(kw.value.value)
                elif kw.arg == "default_factory":
                    factory = kw.value
    return compare, factory


def _scan_dataclass(node: ast.ClassDef, module: SourceModule) -> DataclassInfo | None:
    dec = _dataclass_decorator(node)
    if dec is None:
        return None
    frozen = False
    if isinstance(dec, ast.Call):
        for kw in dec.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                frozen = bool(kw.value.value)
    fields: list[DataclassField] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        if _is_classvar(stmt.annotation):
            continue
        compare, factory = _field_flags(stmt.value)
        fields.append(
            DataclassField(
                name=stmt.target.id,
                annotation=stmt.annotation,
                compare=compare,
                default_factory=factory,
                line=stmt.lineno,
                col=stmt.col_offset,
            )
        )
    return DataclassInfo(
        name=node.name,
        module=module,
        frozen=frozen,
        fields=tuple(fields),
        line=node.lineno,
    )


_ENUM_BASES = {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}


def _is_enum_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        if name in _ENUM_BASES:
            return True
    return False


def load_module(path: Path, display: str | None = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises ``SyntaxError`` on unparsable source — the engine converts
    that into a synthetic finding rather than crashing the whole run.
    """
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = tuple(source.splitlines())
    return SourceModule(
        path=path,
        display=display if display is not None else str(path),
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(lines),
        imports=_parse_imports(tree),
    )


def index_module(project: Project, module: SourceModule) -> None:
    """Fold one module's dataclass/enum definitions into the indexes."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _is_enum_class(node):
            project.enums.add(node.name)
            continue
        info = _scan_dataclass(node, module)
        if info is not None:
            project.dataclasses[info.name] = info
