"""Repo-invariant static analysis: the ``repro check`` pass.

The correctness story of this reproduction rests on conventions no
general-purpose linter knows about: seeded-RNG discipline (content
hashes and differential tests assume determinism), explicit dtypes in
the kernel sub-packages (bit-identity across platforms), cache-key
completeness of the spec dataclasses, picklable job units and builder
hooks, and retained reference paths for every batched replay
implementation.  This package encodes those invariants as AST-level
rules with stable ids, a registry (:mod:`repro.analysis.registry`),
inline ``# repro: ignore[RULE]`` suppressions, and a CLI/CI gate
(``repro check``).

Programmatic use::

    from repro.analysis import run_check
    result = run_check(["src/repro"], tests="tests")
    assert result.ok, [f.render() for f in result.findings]

Adding a rule is one registered class — see
:class:`repro.analysis.registry.Rule` and the shipped rules under
``repro/analysis/rules/``.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  (registers the shipped rules)
from .engine import CheckResult, collect_files, load_project, run_check
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register_rule, resolve_rules

__all__ = [
    "CheckResult",
    "Finding",
    "Rule",
    "all_rules",
    "collect_files",
    "get_rule",
    "load_project",
    "register_rule",
    "resolve_rules",
    "run_check",
]
