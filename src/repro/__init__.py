"""repro — reproduction of AVR: Approximate Value Reconstruction (ICPP 2019).

Public API highlights:

* :class:`repro.compression.AVRCompressor` — the downsampling
  compressor/decompressor pipeline.
* :class:`repro.approx.ApproxMemory` — approximable-region registry that
  applies functional round-trips to workload data.
* :mod:`repro.workloads` — the seven evaluation applications.
* :func:`repro.system.build_system` — full timing-simulator instances
  for baseline / AVR / ZeroAVR / Truncate / Doppelgänger.
* :mod:`repro.harness` — regenerates every table and figure of the
  paper's evaluation.
* :class:`repro.SweepSpec` / :func:`repro.run_sweep` — the parallel
  sweep engine: enumerate the evaluation grid as independent job
  units, fan them out over worker processes, and cache results on
  disk (see :mod:`repro.harness.sweep`).
* :class:`repro.Scenario` / :func:`repro.evaluate_scenario` — the
  scenario subsystem: multi-programmed workload mixes with per-core
  slowdown / weighted-speedup contention metrics (see
  :mod:`repro.scenario` and :mod:`repro.harness.scenario`).
"""

from .common import Design, ErrorThresholds, SystemConfig
from .compression import AVRCompressor

# 1.4.0: the Scenario subsystem.  SimResult grew per-core cycle counts
# and sweep results gained scenario-qualified identities, so the bump
# also invalidates every scenario-unaware on-disk sweep cache entry.
__version__ = "1.4.0"

#: sweep-engine names re-exported lazily so ``import repro`` stays
#: lightweight (the harness pulls in every simulator module).
_SWEEP_EXPORTS = ("SweepPoint", "SweepResult", "SweepSpec", "run_sweep")

#: scenario names re-exported lazily for the same reason
_SCENARIO_EXPORTS = {
    "Scenario": ("repro.scenario", "Scenario"),
    "ScenarioEntry": ("repro.scenario", "ScenarioEntry"),
    "get_scenario": ("repro.scenario", "get_scenario"),
    "parse_mix": ("repro.scenario", "parse_mix"),
    "ScenarioPoint": ("repro.harness.scenario", "ScenarioPoint"),
    "ScenarioEvaluation": ("repro.harness.scenario", "ScenarioEvaluation"),
    "evaluate_scenario": ("repro.harness.scenario", "evaluate_scenario"),
}

__all__ = [
    "AVRCompressor",
    "Design",
    "ErrorThresholds",
    "SystemConfig",
    "__version__",
    *_SWEEP_EXPORTS,
    *_SCENARIO_EXPORTS,
]


def __getattr__(name: str):
    if name in _SWEEP_EXPORTS:
        from .harness import sweep

        return getattr(sweep, name)
    if name in _SCENARIO_EXPORTS:
        import importlib

        module, attr = _SCENARIO_EXPORTS[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
