"""repro — reproduction of AVR: Approximate Value Reconstruction (ICPP 2019).

Public API highlights:

* :class:`repro.compression.AVRCompressor` — the downsampling
  compressor/decompressor pipeline.
* :class:`repro.approx.ApproxMemory` — approximable-region registry that
  applies functional round-trips to workload data.
* :mod:`repro.workloads` — the seven evaluation applications.
* :func:`repro.system.build_system` — full timing-simulator instances
  for baseline / AVR / ZeroAVR / Truncate / Doppelgänger.
* :mod:`repro.harness` — regenerates every table and figure of the
  paper's evaluation.
* :class:`repro.SweepSpec` / :func:`repro.run_sweep` — the parallel
  sweep engine: enumerate the evaluation grid as independent job
  units, fan them out over worker processes, and cache results on
  disk (see :mod:`repro.harness.sweep`).
* :class:`repro.Scenario` / :func:`repro.evaluate_scenario` — the
  scenario subsystem: multi-programmed workload mixes with per-core
  slowdown / weighted-speedup contention metrics (see
  :mod:`repro.scenario` and :mod:`repro.harness.scenario`).
* :class:`repro.DesignSpec` / :func:`repro.register_design` — the open
  design registry (:mod:`repro.designs`): design points are
  registrable values; the five paper designs are shipped entries and
  the legacy ``Design`` enum is a deprecated alias layer.
* :class:`repro.ExperimentSpec` / :func:`repro.run_experiment` — the
  declarative experiment facade (:mod:`repro.experiment`): a whole
  evaluation as one TOML/JSON-serializable, cache-addressable value.
* :mod:`repro.trace` — vectorized trace synthesis (bit-identical to
  the reference fragment loop) and the content-keyed, memory-mapped
  :class:`repro.trace.TraceStore` that warm sweeps map traces from.
* :mod:`repro.analysis` — the ``repro check`` static analysis pass:
  repo invariants (RNG discipline, kernel dtypes, cache-key
  completeness, picklable hooks, engine parity, docstrings) as
  registrable AST rules, gating CI.
* :mod:`repro.serve` — the long-running evaluation service:
  ``repro serve`` hosts a shared result cache and worker pool behind
  a socket; ``repro submit`` streams specs from many concurrent
  clients, with overlapping job units executed exactly once.
"""

from .common import Design, ErrorThresholds, SystemConfig
from .compression import AVRCompressor

# 1.7.0: repo-invariant static analysis pass (``repro check``) +
# strict typing gate.  No simulation semantics changed; the bump marks
# the typed (py.typed) API surface.
# 1.8.0: repro.planner — multi-fidelity design-space search (PlanSpec,
# successive halving over trace fidelity, Pareto-front selection,
# ``repro plan``).  Simulation results are unchanged; the bump keys
# planner cache entries apart from pre-planner runs.
# 1.10.0: repro.serve — the evaluation daemon (session multiplexing,
# cross-client unit dedup, shared cache).  Simulation results are
# unchanged; the bump marks the service protocol's first version.
__version__ = "1.10.0"

#: sweep-engine names re-exported lazily so ``import repro`` stays
#: lightweight (the harness pulls in every simulator module).
_SWEEP_EXPORTS = ("SweepPoint", "SweepResult", "SweepSpec", "run_sweep")

#: design-registry names, re-exported lazily for the same reason
_DESIGN_EXPORTS = {
    "DesignSpec": ("repro.designs", "DesignSpec"),
    "register_design": ("repro.designs", "register_design"),
    "get_design": ("repro.designs", "get_design"),
    "list_designs": ("repro.designs", "list_designs"),
    "PAPER_DESIGNS": ("repro.designs", "PAPER_DESIGNS"),
}

#: experiment-facade names, re-exported lazily for the same reason
_EXPERIMENT_EXPORTS = {
    "ExperimentSpec": ("repro.experiment", "ExperimentSpec"),
    "ExperimentResult": ("repro.experiment", "ExperimentResult"),
    "run_experiment": ("repro.experiment", "run_experiment"),
}

#: scenario names re-exported lazily for the same reason
_SCENARIO_EXPORTS = {
    "Scenario": ("repro.scenario", "Scenario"),
    "ScenarioEntry": ("repro.scenario", "ScenarioEntry"),
    "get_scenario": ("repro.scenario", "get_scenario"),
    "parse_mix": ("repro.scenario", "parse_mix"),
    "ScenarioPoint": ("repro.harness.scenario", "ScenarioPoint"),
    "ScenarioEvaluation": ("repro.harness.scenario", "ScenarioEvaluation"),
    "evaluate_scenario": ("repro.harness.scenario", "evaluate_scenario"),
}

_LAZY_EXPORTS = {**_DESIGN_EXPORTS, **_EXPERIMENT_EXPORTS, **_SCENARIO_EXPORTS}

__all__ = [
    "AVRCompressor",
    "Design",
    "ErrorThresholds",
    "SystemConfig",
    "__version__",
    *_SWEEP_EXPORTS,
    *_LAZY_EXPORTS,
]


def __getattr__(name: str) -> object:
    if name in _SWEEP_EXPORTS:
        from .harness import sweep

        return getattr(sweep, name)
    if name in _LAZY_EXPORTS:
        import importlib

        module, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
