"""repro — reproduction of AVR: Approximate Value Reconstruction (ICPP 2019).

Public API highlights:

* :class:`repro.compression.AVRCompressor` — the downsampling
  compressor/decompressor pipeline.
* :class:`repro.approx.ApproxMemory` — approximable-region registry that
  applies functional round-trips to workload data.
* :mod:`repro.workloads` — the seven evaluation applications.
* :func:`repro.system.build_system` — full timing-simulator instances
  for baseline / AVR / ZeroAVR / Truncate / Doppelgänger.
* :mod:`repro.harness` — regenerates every table and figure of the
  paper's evaluation.
"""

from .common import Design, ErrorThresholds, SystemConfig
from .compression import AVRCompressor

__version__ = "1.0.0"

__all__ = ["AVRCompressor", "Design", "ErrorThresholds", "SystemConfig", "__version__"]
