"""repro — reproduction of AVR: Approximate Value Reconstruction (ICPP 2019).

Public API highlights:

* :class:`repro.compression.AVRCompressor` — the downsampling
  compressor/decompressor pipeline.
* :class:`repro.approx.ApproxMemory` — approximable-region registry that
  applies functional round-trips to workload data.
* :mod:`repro.workloads` — the seven evaluation applications.
* :func:`repro.system.build_system` — full timing-simulator instances
  for baseline / AVR / ZeroAVR / Truncate / Doppelgänger.
* :mod:`repro.harness` — regenerates every table and figure of the
  paper's evaluation.
* :class:`repro.SweepSpec` / :func:`repro.run_sweep` — the parallel
  sweep engine: enumerate the evaluation grid as independent job
  units, fan them out over worker processes, and cache results on
  disk (see :mod:`repro.harness.sweep`).
"""

from .common import Design, ErrorThresholds, SystemConfig
from .compression import AVRCompressor

__version__ = "1.3.0"

#: sweep-engine names re-exported lazily so ``import repro`` stays
#: lightweight (the harness pulls in every simulator module).
_SWEEP_EXPORTS = ("SweepPoint", "SweepResult", "SweepSpec", "run_sweep")

__all__ = [
    "AVRCompressor",
    "Design",
    "ErrorThresholds",
    "SystemConfig",
    "__version__",
    *_SWEEP_EXPORTS,
]


def __getattr__(name: str):
    if name in _SWEEP_EXPORTS:
        from .harness import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
