"""Content-keyed, memory-mapped columnar trace store.

Composed traces are pure functions of their spec — workload trace
specs, region layouts, core placement, access budget and seed — so the
sweep engine persists them under content keys (the same
canonical-form SHA-256 scheme as :mod:`repro.harness.cache`) and warm
runs ``np.memmap`` the stored stream instead of regenerating it.

On disk an entry is a pair of files, sharded by digest prefix:

* ``<root>/<key[:2]>/<key>.npy`` — the columnar payload: every core's
  stream concatenated into one flat :data:`~repro.trace.events.TRACE_DTYPE`
  array (core-major, the layout the batched timing engine consumes).
* ``<root>/<key[:2]>/<key>.json`` — the index record: per-core slice
  offsets, iteration bookkeeping and the expected payload length.

Both files are written via temp-file + ``os.replace``, payload first,
index record last — the record is the commit marker.  A reader that
finds a record whose payload is missing, truncated or mis-shaped
treats the entry as absent (it will be regenerated and atomically
rewritten), so crashed writers and concurrent sweeps sharing a store
directory never surface torn traces.  Concurrent writers of one key
race benignly: content addressing means they replace identical bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .events import TRACE_DTYPE
from .generator import GeneratedTrace

__all__ = [
    "TraceHandle",
    "TraceStore",
    "TraceStoreStats",
    "resolve_trace_store",
    "trace_key",
]


def trace_key(
    spec: Any,
    mem: Any,
    num_cores: int,
    max_accesses_per_core: int,
    seed: int,
    per_core_streams: bool = False,
) -> str:
    """Content key of one :func:`~repro.trace.generator.generate_trace` call.

    Folds everything the generated stream depends on — the
    :class:`~repro.workloads.base.TraceSpec`, the concrete region
    layout the spec references (name, base address, size), core count,
    access budget, seed, stream mode — plus the package version, so a
    ``__version__`` bump invalidates every stored trace along with the
    store-unaware result caches.
    """
    from .. import __version__
    from ..harness.cache import content_key

    regions = []
    seen = set()
    for phase in spec.phases:
        if phase.region in seen:
            continue
        seen.add(phase.region)
        region = mem.region(phase.region)
        regions.append((region.name, region.base_addr, region.nbytes))
    return content_key(
        "trace", __version__, spec, tuple(regions), num_cores,
        max_accesses_per_core, seed, per_core_streams,
    )


@dataclass
class TraceStoreStats:
    """Hit/miss/store counters for one store instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class TraceStore:
    """Memory-mapped trace entries under ``root``, keyed by content."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise NotADirectoryError(
                f"trace store dir {self.root} exists but is not a directory"
            ) from exc
        self.stats = TraceStoreStats()

    def _data_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npy"

    def _meta_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Whether ``key`` has a committed (indexed) entry."""
        return self._meta_path(key).exists()

    def get(self, key: str) -> GeneratedTrace | None:
        """The stored trace for ``key``, memory-mapped, or ``None``.

        The returned per-core arrays are read-only views into one
        ``np.memmap`` of the payload file — no trace data is copied or
        regenerated.  Unreadable, truncated or mis-shaped entries
        (e.g. a writer that crashed between payload and index record)
        count as misses.
        """
        try:
            meta = json.loads(self._meta_path(key).read_text())
            offsets = [int(o) for o in meta["offsets"]]
            data = np.load(self._data_path(key), mmap_mode="r")
            if data.dtype != TRACE_DTYPE or data.shape != (offsets[-1],):
                raise ValueError("trace payload does not match its index record")
            trace = GeneratedTrace(
                cores=[
                    data[lo:hi] for lo, hi in zip(offsets[:-1], offsets[1:])
                ],
                iterations_simulated=int(meta["iterations_simulated"]),
                iterations_total=int(meta["iterations_total"]),
            )
        except (OSError, ValueError, KeyError, IndexError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return trace

    def put(self, key: str, trace: GeneratedTrace) -> None:
        """Store ``trace`` under ``key`` (atomic: payload, then record)."""
        data_path = self._data_path(key)
        data_path.parent.mkdir(parents=True, exist_ok=True)
        offsets = [0]
        for core in trace.cores:
            offsets.append(offsets[-1] + len(core))
        flat = (
            np.concatenate([np.ascontiguousarray(c) for c in trace.cores])
            if offsets[-1]
            else np.empty(0, dtype=TRACE_DTYPE)
        )
        self._atomic_write(
            data_path, lambda fh: np.save(fh, flat, allow_pickle=False)
        )
        meta = {
            "offsets": offsets,
            "iterations_simulated": trace.iterations_simulated,
            "iterations_total": trace.iterations_total,
        }
        self._atomic_write(
            self._meta_path(key),
            lambda fh: fh.write(json.dumps(meta).encode()),
        )
        self.stats.stores += 1

    @staticmethod
    def _atomic_write(path: Path, write: Callable) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_generate(
        self, key: str, generate: Callable[[], GeneratedTrace]
    ) -> GeneratedTrace:
        """The stored trace for ``key``, else ``generate()``, stored.

        The cold path returns the freshly generated in-memory trace
        (not a re-mapped copy): the caller keeps working with the
        arrays it just built, and the next run maps them.
        """
        trace = self.get(key)
        if trace is not None:
            return trace
        trace = generate()
        self.put(key, trace)
        return trace

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


@dataclass(frozen=True)
class TraceHandle:
    """Picklable reference to a committed store entry.

    The sweep engine ships these to worker processes instead of the
    trace arrays themselves: a handle pickles to two short strings, and
    the worker memory-maps the shared payload file on arrival.
    """

    root: str
    key: str

    def load(self) -> GeneratedTrace:
        trace = TraceStore(self.root).get(self.key)
        if trace is None:
            raise FileNotFoundError(
                f"trace store entry {self.key[:12]}... disappeared from "
                f"{self.root} between submission and execution"
            )
        return trace


def resolve_trace_store(
    trace_store: Any, cache_dir: str | Path | None
) -> TraceStore | None:
    """Resolve a user-facing trace-store setting to a store (or None).

    ``None`` means "default": a ``traces/`` directory under
    ``cache_dir`` when one is set, else no store.  ``False`` or the
    string ``"off"`` disables the store explicitly; a path selects a
    directory; a :class:`TraceStore` passes through.
    """
    if trace_store is False or trace_store == "off":
        return None
    if isinstance(trace_store, TraceStore):
        return trace_store
    if trace_store is not None:
        return TraceStore(trace_store)
    if cache_dir is not None:
        return TraceStore(Path(cache_dir) / "traces")
    return None
