"""Memory-trace representation.

A trace is a numpy structured array per core: physical address,
read/write flag, and the number of non-memory instructions executed
since the previous access (the interval model's "gap").  Structured
arrays keep generation vectorized and replay cache-friendly, per the
hpc-parallel guidance.
"""

from __future__ import annotations

import numpy as np

#: structured dtype of one trace record
TRACE_DTYPE = np.dtype(
    [("addr", np.uint64), ("write", np.bool_), ("gap", np.uint32)]
)


def make_trace(
    addrs: np.ndarray, writes: np.ndarray, gaps: np.ndarray
) -> np.ndarray:
    """Assemble a trace array from parallel field arrays."""
    n = len(addrs)
    if len(writes) != n or len(gaps) != n:
        raise ValueError("field arrays must have equal length")
    out = np.empty(n, dtype=TRACE_DTYPE)
    out["addr"] = addrs
    out["write"] = writes
    out["gap"] = gaps
    return out


def concat_traces(traces: list[np.ndarray]) -> np.ndarray:
    """Concatenate trace fragments in program order."""
    if not traces:
        return np.empty(0, dtype=TRACE_DTYPE)
    return np.concatenate(traces)


def total_instructions(trace: np.ndarray) -> int:
    """Instructions represented by a trace: gaps + one per access."""
    return int(trace["gap"].sum()) + len(trace)
