"""Synthetic memory-trace generation for the timing layer."""

from .events import TRACE_DTYPE, concat_traces, make_trace, total_instructions
from .generator import GENERATORS, GeneratedTrace, generate_trace
from .store import (
    TraceHandle,
    TraceStore,
    TraceStoreStats,
    resolve_trace_store,
    trace_key,
)

__all__ = [
    "GENERATORS",
    "GeneratedTrace",
    "TRACE_DTYPE",
    "TraceHandle",
    "TraceStore",
    "TraceStoreStats",
    "concat_traces",
    "generate_trace",
    "make_trace",
    "resolve_trace_store",
    "total_instructions",
    "trace_key",
]
