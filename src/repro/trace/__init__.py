"""Synthetic memory-trace generation for the timing layer."""

from .events import TRACE_DTYPE, concat_traces, make_trace, total_instructions
from .generator import GeneratedTrace, generate_trace

__all__ = [
    "GeneratedTrace",
    "TRACE_DTYPE",
    "concat_traces",
    "generate_trace",
    "make_trace",
    "total_instructions",
]
