"""Synthetic trace generation from a workload's :class:`TraceSpec`.

The generator turns the declarative access-pattern description (which
regions are swept, read/write mix, compute gaps) plus the concrete
region layout of an :class:`~repro.approx.ApproxMemory` into per-core
address streams.  Multi-core runs use domain decomposition: each core
sweeps its contiguous slice of every phase, as the paper's OpenMP-style
benchmarks do.

Trace volume is bounded by ``max_accesses_per_core``: when the spec's
full iteration count would exceed it, a prefix of iterations is
generated and the *scale factor* recorded, so the harness can report
full-run quantities (the simulated prefix is representative because
every iteration sweeps the same working set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..approx.memory import ApproxMemory
from ..workloads.base import Phase, TraceSpec
from .events import TRACE_DTYPE, concat_traces, make_trace


@dataclass
class GeneratedTrace:
    """Per-core traces plus bookkeeping for full-run extrapolation."""

    cores: list[np.ndarray]
    iterations_simulated: int
    iterations_total: int

    @property
    def scale_factor(self) -> float:
        """Multiply simulated totals by this to estimate the full run."""
        if self.iterations_simulated == 0:
            return 1.0
        return self.iterations_total / self.iterations_simulated

    @property
    def total_accesses(self) -> int:
        return int(sum(len(t) for t in self.cores))

    def concatenated(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the per-core streams for the batched timing engine.

        Returns ``(core_ids, addrs, writes, gaps, offsets)``: parallel
        arrays over all accesses in core-major order (core 0's whole
        stream, then core 1's, ...), plus the per-core start offsets
        (``offsets[c]:offsets[c+1]`` slices core ``c``).  Addresses and
        gaps are widened to int64 so downstream shift/compare arithmetic
        is signed and overflow-free.
        """
        lengths = np.array([len(t) for t in self.cores], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        n = int(offsets[-1])
        core_ids = np.repeat(np.arange(len(self.cores), dtype=np.int64), lengths)
        addrs = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        gaps = np.empty(n, dtype=np.int64)
        for c, t in enumerate(self.cores):
            sl = slice(int(offsets[c]), int(offsets[c + 1]))
            addrs[sl] = t["addr"].astype(np.int64)
            writes[sl] = t["write"]
            gaps[sl] = t["gap"]
        return core_ids, addrs, writes, gaps, offsets


def _phase_addresses(
    phase: Phase,
    base: int,
    nbytes: int,
    iteration: int,
    iterations_total: int,
    core: int,
    num_cores: int,
) -> np.ndarray:
    """Cacheline-granular addresses for one phase, one core, one iteration."""
    if phase.rolling:
        # Streaming-log pattern: iteration i touches the i-th window.
        window = nbytes // max(iterations_total, 1)
        start = base + iteration * window
        span = window
    else:
        start = base
        span = int(nbytes * phase.fraction)
    # Domain decomposition across cores.
    slice_span = span // max(num_cores, 1)
    start += core * slice_span
    if slice_span < phase.stride:
        return np.empty(0, dtype=np.int64)
    addrs = np.arange(start, start + slice_span, phase.stride, dtype=np.int64)
    if phase.repeats > 1:
        addrs = np.tile(addrs, phase.repeats)
    return addrs


def budget_iterations(
    spec: TraceSpec,
    mem: ApproxMemory,
    num_cores: int,
    max_accesses_per_core: int,
) -> int:
    """Iterations actually simulated under the per-core access budget.

    The cost of one iteration for one core is derived from the spec's
    phases; when the full iteration count would blow the budget, a
    prefix is simulated and the caller reports the
    :attr:`GeneratedTrace.scale_factor`.  Exposed separately from
    :func:`generate_trace` so the scenario harness can compute scale
    factors without paying for trace generation (e.g. on a warm sweep
    cache).
    """
    per_iter = 0
    for phase in spec.phases:
        region = mem.region(phase.region)
        span = (
            region.nbytes // max(spec.iterations, 1)
            if phase.rolling
            else int(region.nbytes * phase.fraction)
        )
        per_iter += (span // max(num_cores, 1) // phase.stride) * phase.repeats * (
            (1 if phase.reads else 0) + (1 if phase.writes else 0)
        )
    per_iter = max(per_iter, 1)
    return max(1, min(spec.iterations, max_accesses_per_core // per_iter))


def generate_trace(
    spec: TraceSpec,
    mem: ApproxMemory,
    num_cores: int = 1,
    max_accesses_per_core: int = 300_000,
    seed: int = 0,
    per_core_streams: bool = False,
) -> GeneratedTrace:
    """Build per-core traces for a workload's main loop.

    Deterministic in ``(spec, mem layout, num_cores,
    max_accesses_per_core, seed, per_core_streams)``: the only
    randomness is the seeded per-access gap jitter that drifts cores
    out of lockstep.  The sweep engine relies on this determinism to
    rebuild identical traces in the parent process regardless of where
    the functional jobs ran.  When the spec's full iteration count
    would exceed the per-core access budget, a prefix of iterations is
    generated and recorded in the result's ``scale_factor``.

    By default all cores draw jitter from one sequential RNG stream
    (the historical behaviour — existing single-workload traces stay
    bit-identical).  With ``per_core_streams`` each core draws from its
    own :class:`~numpy.random.SeedSequence` child of ``seed``, so a
    core's jitter no longer depends on how much trace the cores before
    it generated.  Scenario composition spawns *instance*-level child
    seeds the same way (:func:`repro.scenario.compose.instance_seeds`),
    which is what keeps two instances of one workload from emitting
    identical streams.
    """
    iters_sim = budget_iterations(spec, mem, num_cores, max_accesses_per_core)

    if per_core_streams:
        core_rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(max(num_cores, 1))
        ]
    else:
        shared_rng = np.random.default_rng(seed)
    cores: list[np.ndarray] = []
    for core in range(num_cores):
        rng = core_rngs[core] if per_core_streams else shared_rng
        fragments: list[np.ndarray] = []
        for iteration in range(iters_sim):
            for phase in spec.phases:
                region = mem.region(phase.region)
                addrs = _phase_addresses(
                    phase, region.base_addr, region.nbytes,
                    iteration, spec.iterations, core, num_cores,
                )
                if addrs.size == 0:
                    continue
                gaps = np.full(addrs.size, phase.gap, dtype=np.uint32)
                # Jitter gaps slightly so cores drift out of lockstep.
                gaps += rng.integers(0, 3, addrs.size, dtype=np.uint32)
                if phase.reads and phase.writes:
                    # Read-modify-write sweep: emit a read and a write
                    # per line (interleaved in program order).
                    n = addrs.size
                    both = np.empty(2 * n, dtype=TRACE_DTYPE)
                    both["addr"][0::2] = addrs
                    both["addr"][1::2] = addrs
                    both["write"][0::2] = False
                    both["write"][1::2] = True
                    both["gap"][0::2] = gaps
                    both["gap"][1::2] = 0
                    fragments.append(both)
                else:
                    fragments.append(
                        make_trace(addrs, np.full(addrs.size, phase.writes), gaps)
                    )
        cores.append(concat_traces(fragments))
    return GeneratedTrace(
        cores=cores,
        iterations_simulated=iters_sim,
        iterations_total=spec.iterations,
    )
