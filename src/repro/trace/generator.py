"""Synthetic trace generation from a workload's :class:`TraceSpec`.

The generator turns the declarative access-pattern description (which
regions are swept, read/write mix, compute gaps) plus the concrete
region layout of an :class:`~repro.approx.ApproxMemory` into per-core
address streams.  Multi-core runs use domain decomposition: each core
sweeps its contiguous slice of every phase, as the paper's OpenMP-style
benchmarks do.

Two generator implementations produce bit-identical streams:

* ``generator="vectorized"`` (the default) synthesizes each core's
  full stream in one columnar pass: the per-iteration access pattern
  is materialized once as a *template* (addresses, write flags,
  rolling-window advance per element), the (iteration x template)
  grid is expanded with a single broadcast add, and all gap jitter is
  drawn in one RNG call per core.
* ``generator="reference"`` is the historical per-(iteration, phase)
  fragment loop, retained as the differential-testing anchor — the
  vectorized path is pinned bit-identical to it by the trace
  equivalence suite.

Bit-identity holds because ``numpy``'s bounded ``integers`` sampling
consumes the underlying bit stream sequentially (the 32-bit buffer is
part of the generator state), so one draw of N values equals N draws of
one value — the vectorized path draws exactly the values the reference
loop would, in the same order.

Trace volume is bounded by ``max_accesses_per_core``: when the spec's
full iteration count would exceed it, a prefix of iterations is
generated and the *scale factor* recorded, so the harness can report
full-run quantities (the simulated prefix is representative because
every iteration sweeps the same working set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..approx.memory import ApproxMemory
from ..workloads.base import Phase, TraceSpec
from .events import TRACE_DTYPE, concat_traces, make_trace

#: trace-generator implementations accepted by :func:`generate_trace`
GENERATORS = ("vectorized", "reference")

#: exclusive bound of the per-access gap jitter (cores drift out of
#: lockstep by 0-2 extra instructions per access)
_JITTER_BOUND = 3


@dataclass
class GeneratedTrace:
    """Per-core traces plus bookkeeping for full-run extrapolation."""

    cores: list[np.ndarray]
    iterations_simulated: int
    iterations_total: int

    @property
    def scale_factor(self) -> float:
        """Multiply simulated totals by this to estimate the full run."""
        if self.iterations_simulated == 0:
            return 1.0
        return self.iterations_total / self.iterations_simulated

    @property
    def total_accesses(self) -> int:
        return int(sum(len(t) for t in self.cores))

    def concatenated(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the per-core streams for the batched timing engine.

        Returns ``(core_ids, addrs, writes, gaps, offsets)``: parallel
        arrays over all accesses in core-major order (core 0's whole
        stream, then core 1's, ...), plus the per-core start offsets
        (``offsets[c]:offsets[c+1]`` slices core ``c``).  Addresses and
        gaps are widened to int64 so downstream shift/compare arithmetic
        is signed and overflow-free.
        """
        lengths = np.array([len(t) for t in self.cores], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        n = int(offsets[-1])
        core_ids = np.repeat(np.arange(len(self.cores), dtype=np.int64), lengths)
        addrs = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        gaps = np.empty(n, dtype=np.int64)
        for c, t in enumerate(self.cores):
            sl = slice(int(offsets[c]), int(offsets[c + 1]))
            addrs[sl] = t["addr"].astype(np.int64)
            writes[sl] = t["write"]
            gaps[sl] = t["gap"]
        return core_ids, addrs, writes, gaps, offsets


def _phase_addresses(
    phase: Phase,
    base: int,
    nbytes: int,
    iteration: int,
    iterations_total: int,
    core: int,
    num_cores: int,
) -> np.ndarray:
    """Cacheline-granular addresses for one phase, one core, one iteration."""
    span = phase.span_bytes(nbytes, iterations_total)
    slice_span = phase.slice_span(nbytes, iterations_total, num_cores)
    if phase.rolling:
        # Streaming-log pattern: iteration i touches the i-th window.
        start = base + iteration * span
    else:
        start = base
    # Domain decomposition across cores.
    start += core * slice_span
    if slice_span < phase.stride:
        return np.empty(0, dtype=np.int64)
    addrs = np.arange(start, start + slice_span, phase.stride, dtype=np.int64)
    if phase.repeats > 1:
        addrs = np.tile(addrs, phase.repeats)
    return addrs


def budget_iterations(
    spec: TraceSpec,
    mem: ApproxMemory,
    num_cores: int,
    max_accesses_per_core: int,
) -> int:
    """Iterations actually simulated under the per-core access budget.

    The cost of one iteration for one core is the *exact* per-core
    access count the generator emits (via the :class:`Phase` geometry
    helpers — the same arithmetic both generator implementations use),
    so ``iterations * per-iteration cost`` always equals the generated
    stream length.  When the full iteration count would blow the
    budget, a prefix is simulated and the caller reports the
    :attr:`GeneratedTrace.scale_factor`.  Exposed separately from
    :func:`generate_trace` so the scenario harness can compute scale
    factors without paying for trace generation (e.g. on a warm sweep
    cache).
    """
    per_iter = 0
    for phase in spec.phases:
        region = mem.region(phase.region)
        per_iter += (
            phase.lines_per_core(region.nbytes, spec.iterations, num_cores)
            * phase.accesses_per_line
        )
    per_iter = max(per_iter, 1)
    return max(1, min(spec.iterations, max_accesses_per_core // per_iter))


# ----------------------------------------------------------------------
# vectorized implementation
# ----------------------------------------------------------------------
def _core_template(
    spec: TraceSpec, mem: ApproxMemory, core: int, num_cores: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[tuple[Phase, int, int, int]]]:
    """One core's per-iteration access pattern as columnar arrays.

    Returns ``(addrs, writes, steps, blocks)``: the iteration-0
    addresses (read-modify-write lines already doubled), the write
    flags, the per-element address advance between iterations (the
    rolling window size, 0 for fixed phases), and per-phase
    ``(phase, jitter_count, access_offset, access_count)`` bookkeeping
    for gap assembly.  Phases whose core slice emits nothing are
    skipped entirely — exactly as the reference loop skips them before
    drawing any jitter.
    """
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    step_parts: list[np.ndarray] = []
    blocks: list[tuple[Phase, int, int, int]] = []
    offset = 0
    for phase in spec.phases:
        region = mem.region(phase.region)
        addrs = _phase_addresses(
            phase, region.base_addr, region.nbytes,
            0, spec.iterations, core, num_cores,
        )
        if addrs.size == 0:
            continue
        lines = addrs.size
        step = phase.span_bytes(region.nbytes, spec.iterations) if phase.rolling else 0
        if phase.reads and phase.writes:
            # Read-modify-write sweep: a read and a write per line,
            # interleaved in program order.
            addr_parts.append(np.repeat(addrs, 2))
            write_parts.append(np.tile([False, True], lines))
            count = 2 * lines
        else:
            addr_parts.append(addrs)
            write_parts.append(np.full(lines, phase.writes, dtype=np.bool_))
            count = lines
        step_parts.append(np.full(count, step, dtype=np.int64))
        blocks.append((phase, lines, offset, count))
        offset += count
    if not addr_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=bool), empty, blocks
    return (
        np.concatenate(addr_parts),
        np.concatenate(write_parts),
        np.concatenate(step_parts),
        blocks,
    )


def _generate_core_vectorized(
    spec: TraceSpec,
    mem: ApproxMemory,
    core: int,
    num_cores: int,
    iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One core's full stream in one columnar pass.

    The (iteration x template) grid is a broadcast add of the rolling
    steps; all jitter is one RNG draw, reshaped so column ``j`` of
    iteration ``i`` is exactly the value the reference loop's
    per-fragment draw would produce at that position.
    """
    addrs0, writes0, steps, blocks = _core_template(spec, mem, core, num_cores)
    width = addrs0.size
    if width == 0 or iterations == 0:
        return np.empty(0, dtype=TRACE_DTYPE)
    jitter_width = sum(lines for _, lines, _, _ in blocks)
    jitter = rng.integers(
        0, _JITTER_BOUND, iterations * jitter_width, dtype=np.uint32
    ).reshape(iterations, jitter_width)

    out = np.empty(iterations * width, dtype=TRACE_DTYPE)
    grid = addrs0[None, :] + steps[None, :] * np.arange(
        iterations, dtype=np.int64
    )[:, None]
    out["addr"] = grid.reshape(-1)
    out["write"] = np.tile(writes0, iterations)

    gaps = np.zeros((iterations, width), dtype=np.uint32)
    jitter_col = 0
    for phase, lines, offset, count in blocks:
        cols = jitter[:, jitter_col : jitter_col + lines]
        jitter_col += lines
        if count == 2 * lines:
            # Read-modify-write: the read carries the gap, the paired
            # write follows immediately (gap 0).
            gaps[:, offset : offset + count : 2] = np.uint32(phase.gap) + cols
        else:
            gaps[:, offset : offset + count] = np.uint32(phase.gap) + cols
    out["gap"] = gaps.reshape(-1)
    return out


# ----------------------------------------------------------------------
# reference implementation (the differential-testing anchor)
# ----------------------------------------------------------------------
def _generate_core_reference(
    spec: TraceSpec,
    mem: ApproxMemory,
    core: int,
    num_cores: int,
    iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The historical per-(iteration, phase) fragment loop."""
    fragments: list[np.ndarray] = []
    for iteration in range(iterations):
        for phase in spec.phases:
            region = mem.region(phase.region)
            addrs = _phase_addresses(
                phase, region.base_addr, region.nbytes,
                iteration, spec.iterations, core, num_cores,
            )
            if addrs.size == 0:
                continue
            gaps = np.full(addrs.size, phase.gap, dtype=np.uint32)
            # Jitter gaps slightly so cores drift out of lockstep.
            gaps += rng.integers(0, _JITTER_BOUND, addrs.size, dtype=np.uint32)
            if phase.reads and phase.writes:
                # Read-modify-write sweep: emit a read and a write
                # per line (interleaved in program order).
                n = addrs.size
                both = np.empty(2 * n, dtype=TRACE_DTYPE)
                both["addr"][0::2] = addrs
                both["addr"][1::2] = addrs
                both["write"][0::2] = False
                both["write"][1::2] = True
                both["gap"][0::2] = gaps
                both["gap"][1::2] = 0
                fragments.append(both)
            else:
                fragments.append(
                    make_trace(
                        addrs,
                        np.full(addrs.size, phase.writes, dtype=np.bool_),
                        gaps,
                    )
                )
    return concat_traces(fragments)


_GENERATOR_FNS = {
    "vectorized": _generate_core_vectorized,
    "reference": _generate_core_reference,
}


def generate_trace(
    spec: TraceSpec,
    mem: ApproxMemory,
    num_cores: int = 1,
    max_accesses_per_core: int = 300_000,
    seed: int = 0,
    per_core_streams: bool = False,
    generator: str = "vectorized",
) -> GeneratedTrace:
    """Build per-core traces for a workload's main loop.

    Deterministic in ``(spec, mem layout, num_cores,
    max_accesses_per_core, seed, per_core_streams)``: the only
    randomness is the seeded per-access gap jitter that drifts cores
    out of lockstep.  The sweep engine relies on this determinism to
    rebuild identical traces in the parent process regardless of where
    the functional jobs ran, and the trace store relies on it to key
    stored traces by content.  When the spec's full iteration count
    would exceed the per-core access budget, a prefix of iterations is
    generated and recorded in the result's ``scale_factor``.

    ``generator`` selects the implementation (see :data:`GENERATORS`):
    the columnar ``"vectorized"`` fast path (default) or the
    ``"reference"`` fragment loop — bit-identical results either way,
    so the choice never enters content keys.

    By default all cores draw jitter from one sequential RNG stream
    (the historical behaviour — existing single-workload traces stay
    bit-identical).  With ``per_core_streams`` each core draws from its
    own :class:`~numpy.random.SeedSequence` child of ``seed``, so a
    core's jitter no longer depends on how much trace the cores before
    it generated.  Scenario composition spawns *instance*-level child
    seeds the same way (:func:`repro.scenario.compose.instance_seeds`),
    which is what keeps two instances of one workload from emitting
    identical streams.
    """
    try:
        generate_core = _GENERATOR_FNS[generator]
    except KeyError:
        raise ValueError(
            f"unknown trace generator {generator!r}; expected one of {GENERATORS}"
        ) from None
    iters_sim = budget_iterations(spec, mem, num_cores, max_accesses_per_core)

    if per_core_streams:
        core_rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(max(num_cores, 1))
        ]
    else:
        shared_rng = np.random.default_rng(seed)
    cores: list[np.ndarray] = []
    for core in range(num_cores):
        rng = core_rngs[core] if per_core_streams else shared_rng
        cores.append(
            generate_core(spec, mem, core, num_cores, iters_sim, rng)
        )
    return GeneratedTrace(
        cores=cores,
        iterations_simulated=iters_sim,
        iterations_total=spec.iterations,
    )
