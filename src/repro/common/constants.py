"""Architectural constants shared across the AVR reproduction.

These mirror the fixed parameters of the ICPP 2019 paper: 64-byte
cachelines, memory blocks of 16 cachelines (1 KB, a quarter of a 4 KB
page), 32-bit values, and the compressed-block format limits.
"""

from __future__ import annotations

#: Size of a cacheline in bytes (granularity of main-memory access).
CACHELINE_BYTES: int = 64

#: Number of cachelines in an AVR memory block.
BLOCK_CACHELINES: int = 16

#: Size of an AVR memory block in bytes (1 KB, a quarter of a 4 KB page).
BLOCK_BYTES: int = CACHELINE_BYTES * BLOCK_CACHELINES

#: Width of an approximable value in bytes (the paper supports 32-bit
#: float and fixed-point formats).
VALUE_BYTES: int = 4

#: Number of 32-bit values in a cacheline.
VALUES_PER_CACHELINE: int = CACHELINE_BYTES // VALUE_BYTES

#: Number of 32-bit values in a memory block (256).
VALUES_PER_BLOCK: int = BLOCK_BYTES // VALUE_BYTES

#: Downsampling factor: values per sub-block averaged into one summary
#: value (16:1 target compression ratio).
SUBBLOCK_VALUES: int = 16

#: Number of summary values per block (256 / 16 = 16 → exactly one
#: cacheline of summary).
SUMMARY_VALUES: int = VALUES_PER_BLOCK // SUBBLOCK_VALUES

#: Side of the square when a block is viewed as a 2D array (16 x 16).
BLOCK_SIDE_2D: int = 16

#: Side of a 2D sub-block tile (4 x 4 = 16 values).
TILE_SIDE_2D: int = 4

#: Number of tiles per side in the 2D view (16 / 4).
TILES_PER_SIDE_2D: int = BLOCK_SIDE_2D // TILE_SIDE_2D

#: Outlier bitmap size: one bit per 32-bit value = 256 bits = 32 bytes
#: (half a cacheline).
BITMAP_BYTES: int = VALUES_PER_BLOCK // 8

#: Maximum size of a *compressed* block, in cachelines.  A block that
#: needs more than this is stored uncompressed (2:1 worst-case ratio).
MAX_COMPRESSED_CACHELINES: int = 8

#: Maximum number of outliers a compressed block can embed:
#: 8 CLs - 1 summary CL - half-CL bitmap leaves (8*64 - 64 - 32)/4 values.
MAX_OUTLIERS: int = (
    MAX_COMPRESSED_CACHELINES * CACHELINE_BYTES - CACHELINE_BYTES - BITMAP_BYTES
) // VALUE_BYTES

#: Page size assumed by the CMT layout (4 KB → 4 blocks per page).
PAGE_BYTES: int = 4096

#: Memory blocks per page.
BLOCKS_PER_PAGE: int = PAGE_BYTES // BLOCK_BYTES

#: Compression pipeline latency in processor cycles (from the paper's
#: RTL synthesis: total block compression latency).
COMPRESS_LATENCY_CYCLES: int = 49

#: Decompression pipeline latency in processor cycles.
DECOMPRESS_LATENCY_CYCLES: int = 12

#: CMT entry width in bits (size 3 + lazy 4 + method 2 + bias 8 +
#: failed 4 + skipped 2 = 23 bits, Figure 3).
CMT_ENTRY_BITS: int = 23

#: Extra tag/BPA bits the AVR LLC adds per data-array entry (paper §4.2).
AVR_LLC_EXTRA_BITS_PER_ENTRY: int = 18

#: Maximum value of the consecutive-failed-compressions counter (4 bits).
MAX_FAILED_COUNT: int = 15

#: Maximum value of the skipped-compressions counter (2 bits).
MAX_SKIP_COUNT: int = 3
