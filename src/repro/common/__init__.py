"""Shared constants, configuration, types and utilities."""

from . import bitops, constants
from .config import CacheConfig, CoreConfig, DRAMConfig, SystemConfig
from .stats import StatCounter
from .types import (
    AccessType,
    COMPARED_DESIGNS,
    CompressionMethod,
    DataType,
    Design,
    ErrorThresholds,
    EvictionOutcome,
    LLCRequestOutcome,
)

__all__ = [
    "AccessType",
    "COMPARED_DESIGNS",
    "CacheConfig",
    "CompressionMethod",
    "CoreConfig",
    "DRAMConfig",
    "DataType",
    "Design",
    "ErrorThresholds",
    "EvictionOutcome",
    "LLCRequestOutcome",
    "StatCounter",
    "SystemConfig",
    "bitops",
    "constants",
]
