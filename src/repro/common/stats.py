"""Lightweight statistics counters shared by the simulators."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping


class StatCounter:
    """A named bag of integer/float counters with arithmetic helpers.

    The simulators accumulate event counts (hits, misses, bytes, cycles)
    into one of these; the harness reads them out for the figures.
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: Counter = Counter()
        if initial:
            self._counts.update(initial)

    def add(self, name: str, amount: float = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str, default: float = 0) -> float:
        return self._counts.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def merge(self, other: "StatCounter") -> None:
        self._counts.update(other._counts)

    def reset(self, names: Iterable[str] | None = None) -> None:
        if names is None:
            self._counts.clear()
        else:
            for name in names:
                self._counts.pop(name, None)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counts[num] / counts[den]``, 0 when the denominator is 0."""
        den = self._counts.get(denominator, 0)
        return self._counts.get(numerator, 0) / den if den else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"StatCounter({body})"
