"""System configuration (paper Table 1) and the scaled simulation config.

``SystemConfig.paper()`` reproduces Table 1 verbatim.  Because the
reproduction's simulators are pure Python, experiments default to
``SystemConfig.scaled()``: a smaller machine whose ratios (working set /
LLC capacity, DRAM bandwidth / demand) sit in the same regime, so the
*normalized* results keep their shape while traces stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .types import ErrorThresholds


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class DRAMConfig:
    """DDR4 main-memory model parameters."""

    channels: int = 2
    banks_per_channel: int = 16
    row_bytes: int = 2048
    #: core-clock cycles for a row-buffer hit (CAS-limited access)
    row_hit_cycles: int = 30
    #: core-clock cycles for a row-buffer miss (precharge + activate + CAS)
    row_miss_cycles: int = 90
    #: core cycles one channel is busy transferring one 64 B burst
    #: (DDR4-1600 x64: 64 B / 12.8 GB/s ≈ 5 ns ≈ 16 cycles @3.2 GHz)
    burst_cycles: int = 16


@dataclass(frozen=True)
class CoreConfig:
    """Interval-model core parameters."""

    frequency_ghz: float = 3.2
    issue_width: int = 4
    #: base IPC when no memory stalls occur (interval model dispatch rate)
    base_ipc: float = 2.0
    #: memory-level parallelism: overlapping factor applied to miss
    #: latency (OoO window + stream prefetching on these regular codes)
    mlp: float = 4.0


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration (paper Table 1 analogue)."""

    num_cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, 8)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * 1024 * 1024, 16, 15)
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    thresholds: ErrorThresholds = field(default_factory=ErrorThresholds)
    #: Doppelgänger is configured with a 4x larger tag array than AVR.
    dganger_tag_factor: int = 4

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The exact Table 1 configuration."""
        return cls()

    @classmethod
    def scaled(cls, num_cores: int = 2) -> "SystemConfig":
        """A laptop-scale configuration for pure-Python simulation.

        Caches are shrunk 16x so that the scaled workload footprints
        (also ~16x smaller) stress the hierarchy the way the paper's
        footprints stress an 8 MB LLC.
        """
        return cls(
            num_cores=num_cores,
            l1=CacheConfig(4 * 1024, 4, 1),
            l2=CacheConfig(16 * 1024, 8, 8),
            llc=CacheConfig(1024 * 1024, 16, 15),
        )

    def with_thresholds(self, thresholds: ErrorThresholds) -> "SystemConfig":
        return replace(self, thresholds=thresholds)
