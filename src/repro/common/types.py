"""Shared enums and small datatypes used across the simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DataType(enum.Enum):
    """Value representation of an approximable region."""

    FLOAT32 = "float32"
    FIXED32 = "fixed32"


class CompressionMethod(enum.IntEnum):
    """Downsampling variant recorded in the CMT ``method`` field.

    The 2-bit field distinguishes an uncompressed block from the two
    placement variants the compressor attempts in parallel.
    """

    UNCOMPRESSED = 0
    DOWNSAMPLE_1D = 1
    DOWNSAMPLE_2D = 2


class AccessType(enum.IntEnum):
    """Type of a memory access in a trace."""

    READ = 0
    WRITE = 1


class LLCRequestOutcome(enum.IntEnum):
    """Outcome classes of an AVR LLC request (Figure 14)."""

    MISS = 0
    HIT_UNCOMPRESSED = 1
    HIT_DBUF = 2
    HIT_COMPRESSED = 3


class EvictionOutcome(enum.IntEnum):
    """Outcome classes of an AVR LLC eviction of a dirty line (Figure 15)."""

    RECOMPRESS = 0
    LAZY_WRITEBACK = 1
    FETCH_RECOMPRESS = 2
    UNCOMPRESSED_WRITEBACK = 3


class Design(enum.Enum):
    """The five paper design points — **deprecated alias layer**.

    Design points are open registry entries now (see
    :mod:`repro.designs`); these enum members remain importable for
    pre-registry code and are accepted anywhere a design is expected
    (every API resolves them through
    :func:`repro.designs.get_design`).  New code should use registry
    names or :class:`~repro.designs.DesignSpec` values — new design
    points exist only in the registry and have no enum member.
    """

    BASELINE = "baseline"
    DGANGER = "dganger"
    TRUNCATE = "truncate"
    ZERO_AVR = "ZeroAVR"
    AVR = "AVR"


#: Design points shown in the figures, in paper order (baseline is the
#: normalization reference and not plotted itself except for energy).
#: Deprecated alias of :data:`repro.designs.COMPARED`.
COMPARED_DESIGNS = (Design.DGANGER, Design.TRUNCATE, Design.ZERO_AVR, Design.AVR)


@dataclass(frozen=True)
class ErrorThresholds:
    """Approximation error knobs exposed by AVR.

    ``t1`` bounds the relative error of each individual value; values
    exceeding it become outliers.  ``t2`` bounds the average relative
    error across the non-outlier values of a block; exceeding it fails
    the whole compression attempt.  The paper uses ``t1 = 2 * t2``.

    Defaults are tight (2 % / 1 %): the paper's iterative benchmarks
    re-approximate their data on every pass through memory, and its
    sub-1 % output errors are only reachable with per-pass error well
    below the output budget.
    """

    t1: float = 0.02
    t2: float = 0.01

    def __post_init__(self) -> None:
        if not (0.0 < self.t1 <= 1.0):
            raise ValueError(f"t1 must be in (0, 1], got {self.t1}")
        if not (0.0 < self.t2 <= 1.0):
            raise ValueError(f"t2 must be in (0, 1], got {self.t2}")

    @classmethod
    def from_t2(cls, t2: float) -> "ErrorThresholds":
        """Build thresholds with the paper's ``T1 = 2 * T2`` relation."""
        return cls(t1=min(1.0, 2.0 * t2), t2=t2)
