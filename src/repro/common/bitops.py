"""Vectorized IEEE-754 float32 field manipulation.

AVR's outlier check and exponent biasing operate on the *fields* of
float32 values (sign, 8-bit exponent, 23-bit mantissa).  These helpers
implement those operations on whole numpy arrays at once via uint32
bit views, mirroring what the RTL does per value.
"""

from __future__ import annotations

import numpy as np

#: Bit layout of IEEE-754 binary32.
SIGN_SHIFT = 31
EXP_SHIFT = 23
EXP_MASK = np.uint32(0xFF)
MANTISSA_MASK = np.uint32((1 << 23) - 1)
EXP_BIAS = 127
EXP_MAX = 255  # all-ones exponent encodes Inf/NaN


def as_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float32 array as uint32 bit patterns (no copy)."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    return values.view(np.uint32)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as float32 values (no copy)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint32)
    return bits.view(np.float32)


def sign_bits(values: np.ndarray) -> np.ndarray:
    """Sign bit of each value (0 positive, 1 negative)."""
    return (as_bits(values) >> np.uint32(SIGN_SHIFT)).astype(np.uint8)


def exponent_bits(values: np.ndarray) -> np.ndarray:
    """Raw (biased) 8-bit exponent field of each value."""
    return ((as_bits(values) >> np.uint32(EXP_SHIFT)) & EXP_MASK).astype(np.int16)


def mantissa_bits(values: np.ndarray) -> np.ndarray:
    """23-bit mantissa field of each value as uint32."""
    return as_bits(values) & MANTISSA_MASK


def is_special(values: np.ndarray) -> np.ndarray:
    """True for NaN and +/-Inf (all-ones exponent)."""
    return exponent_bits(values) == EXP_MAX


def compose(sign: np.ndarray, exponent: np.ndarray, mantissa: np.ndarray) -> np.ndarray:
    """Assemble float32 values from separate field arrays."""
    bits = (
        (sign.astype(np.uint32) << np.uint32(SIGN_SHIFT))
        | ((exponent.astype(np.uint32) & EXP_MASK) << np.uint32(EXP_SHIFT))
        | (mantissa.astype(np.uint32) & MANTISSA_MASK)
    )
    return from_bits(bits)


def add_exponent(values: np.ndarray, delta: int) -> np.ndarray:
    """Add ``delta`` to the exponent field of every *non-zero, finite* value.

    This is the hardware biasing primitive: an 8-bit addition on the
    exponent field, i.e. multiplication by ``2**delta`` without touching
    the mantissa.  Zeros (exponent field 0) are left untouched, matching
    the RTL which never biases denormals/zeros.  Callers must ensure the
    addition cannot over-/underflow (see :mod:`repro.fixedpoint.bias`).
    """
    if delta == 0:
        return np.array(values, dtype=np.float32, copy=True)
    bits = as_bits(values).copy()
    exp = (bits >> np.uint32(EXP_SHIFT)) & EXP_MASK
    adjustable = (exp != 0) & (exp != EXP_MAX)
    new_exp = exp.astype(np.int32) + np.int32(delta)
    if np.any(adjustable & ((new_exp <= 0) | (new_exp >= EXP_MAX))):
        raise OverflowError(f"exponent bias {delta} over/underflows a value")
    bits = np.where(
        adjustable,
        (bits & ~(EXP_MASK << np.uint32(EXP_SHIFT)))
        | (new_exp.astype(np.uint32) << np.uint32(EXP_SHIFT)),
        bits,
    )
    return from_bits(bits)


def truncate_mantissa(
    values: np.ndarray, keep_bits: int, rounding: str = "nearest"
) -> np.ndarray:
    """Reduce the mantissa to its ``keep_bits`` most significant bits.

    ``keep_bits=7`` models the Truncate baseline's bfloat16-style
    half-width storage (sign + exponent + 7 mantissa bits = 16 bits).

    ``rounding="nearest"`` applies round-to-nearest-even (what bfloat16
    conversion hardware does; a mantissa carry correctly bumps the
    exponent).  ``rounding="truncate"`` chops the dropped bits, which
    introduces a systematic toward-zero bias that *accumulates* in
    iterative kernels — useful for ablations.
    """
    if not 0 <= keep_bits <= 23:
        raise ValueError(f"keep_bits must be in [0, 23], got {keep_bits}")
    drop = 23 - keep_bits
    bits = as_bits(values)
    mask = np.uint32(0xFFFFFFFF) << np.uint32(drop)
    if rounding == "truncate" or drop == 0:
        return from_bits(bits & mask)
    if rounding != "nearest":
        raise ValueError(f"unknown rounding {rounding!r}")
    # Round-to-nearest-even on the dropped bits.  Skip Inf/NaN (all-ones
    # exponent) so rounding never corrupts specials.
    exp = (bits >> np.uint32(EXP_SHIFT)) & EXP_MASK
    half = np.uint32(1) << np.uint32(drop - 1)
    lsb = (bits >> np.uint32(drop)) & np.uint32(1)
    rounded = (bits + half - np.uint32(1) + lsb) & mask
    return from_bits(np.where(exp == EXP_MAX, bits, rounded))


def mantissa_error_within(
    original: np.ndarray, approx: np.ndarray, n_msbit: int
) -> np.ndarray:
    """The paper's per-value outlier test, vectorized.

    A value is approximated within relative error ``1 / 2**n_msbit``
    when (i) sign and exponent fields match exactly and (ii) the
    mantissa difference does not reach the ``n_msbit``-th most
    significant mantissa bit.  Returns a boolean array, True where the
    approximation is acceptable.
    """
    if not 1 <= n_msbit <= 23:
        raise ValueError(f"n_msbit must be in [1, 23], got {n_msbit}")
    ob, ab = as_bits(original), as_bits(approx)
    same_sign_exp = (ob >> np.uint32(EXP_SHIFT)) == (ab >> np.uint32(EXP_SHIFT))
    om = (ob & MANTISSA_MASK).astype(np.int32)
    am = (ab & MANTISSA_MASK).astype(np.int32)
    diff = np.abs(om - am)
    # Error below 1/2^N <=> difference confined below bit (23 - N).
    limit = np.int32(1) << np.int32(23 - n_msbit)
    return same_sign_exp & (diff < limit)


def n_msbit_for_threshold(t1: float) -> int:
    """Map a relative-error threshold T1 to the paper's N (error < 1/2^N)."""
    if not 0.0 < t1 <= 1.0:
        raise ValueError(f"t1 must be in (0, 1], got {t1}")
    n = int(np.ceil(-np.log2(t1)))
    return int(np.clip(n, 1, 23))
