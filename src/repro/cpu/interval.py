"""Interval-based core model (Genbrugge, Eyerman & Eeckhout, HPCA'10).

Instead of simulating the out-of-order pipeline cycle by cycle, the
interval model dispatches instructions at a steady base rate and adds
the *exposed* portion of each long-latency memory event: miss latency
divided by the memory-level parallelism the window extracts.  L1 hits
are absorbed by the dispatch rate.
"""

from __future__ import annotations

from ..common.config import CoreConfig


class IntervalCore:
    """Cycle accounting for one core."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.cycles = 0.0
        self.instructions = 0
        self.mem_accesses = 0
        self.mem_latency_total = 0.0

    def advance(self, gap_instructions: int) -> None:
        """Execute non-memory instructions at the base dispatch rate."""
        self.instructions += int(gap_instructions) + 1  # + the memory op
        self.cycles += (int(gap_instructions) + 1) / self.config.base_ipc

    def memory_event(self, latency_cycles: float, l1_hit: bool) -> None:
        """Account one memory access' latency.

        L1 hits are hidden by the pipeline; deeper accesses expose
        ``latency / MLP`` cycles of stall.
        """
        self.mem_accesses += 1
        self.mem_latency_total += latency_cycles
        if not l1_hit:
            self.cycles += latency_cycles / self.config.mlp

    @property
    def amat(self) -> float:
        """Average memory access time in cycles."""
        if self.mem_accesses == 0:
            return 0.0
        return self.mem_latency_total / self.mem_accesses

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
