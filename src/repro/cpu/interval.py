"""Interval-based core model (Genbrugge, Eyerman & Eeckhout, HPCA'10).

Instead of simulating the out-of-order pipeline cycle by cycle, the
interval model dispatches instructions at a steady base rate and adds
the *exposed* portion of each long-latency memory event: miss latency
divided by the memory-level parallelism the window extracts.  L1 hits
are absorbed by the dispatch rate.
"""

from __future__ import annotations

import numpy as np

from ..common.config import CoreConfig


class IntervalCore:
    """Cycle accounting for one core."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.cycles = 0.0
        self.instructions = 0
        self.mem_accesses = 0
        self.mem_latency_total = 0.0

    def advance(self, gap_instructions: int) -> None:
        """Execute non-memory instructions at the base dispatch rate."""
        self.instructions += int(gap_instructions) + 1  # + the memory op
        self.cycles += (int(gap_instructions) + 1) / self.config.base_ipc

    def memory_event(self, latency_cycles: float, l1_hit: bool) -> None:
        """Account one memory access' latency.

        L1 hits are hidden by the pipeline; deeper accesses expose
        ``latency / MLP`` cycles of stall.
        """
        self.mem_accesses += 1
        self.mem_latency_total += latency_cycles
        if not l1_hit:
            self.cycles += latency_cycles / self.config.mlp

    def replay_batch(
        self,
        gaps: np.ndarray,
        latencies: np.ndarray,
        l1_hit: np.ndarray,
    ) -> None:
        """Account a whole access stream in one vectorized step.

        Bit-identical to calling ``advance(g); memory_event(lat, hit)``
        per access: the cycle counter is a *sequential* chain of float
        additions, so the batch builds the same chain — dispatch add,
        then stall add, per access — and folds it with
        ``np.add.accumulate`` (a strict left-to-right accumulation,
        unlike ``np.sum``'s pairwise reduction).  L1 hits contribute a
        stall of exactly ``0.0``, which is additively inert for the
        non-negative cycle counter.
        """
        n = int(gaps.size)
        if n == 0:
            return
        counts = gaps.astype(np.int64) + 1
        chain = np.empty(2 * n + 1, dtype=np.float64)
        chain[0] = self.cycles
        chain[1::2] = counts / self.config.base_ipc
        chain[2::2] = np.where(l1_hit, 0.0, latencies / self.config.mlp)
        self.cycles = float(np.add.accumulate(chain)[-1])
        self.instructions += int(counts.sum())
        self.mem_accesses += n
        # Latencies are integral cycles, so any summation order is exact.
        self.mem_latency_total += float(latencies.sum())

    @property
    def amat(self) -> float:
        """Average memory access time in cycles."""
        if self.mem_accesses == 0:
            return 0.0
        return self.mem_latency_total / self.mem_accesses

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
