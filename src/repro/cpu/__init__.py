"""Interval-based processor models."""

from .interval import IntervalCore

__all__ = ["IntervalCore"]
